// folearn command-line tool: learn first-order queries over coloured
// graphs, evaluate saved models, model-check sentences (directly or
// through the Theorem 1 learning-oracle reduction), generate graphs, and
// profile nowhere-density.
//
//   folearn_cli generate --family tree --n 50 --seed 7 --color Red:0.3
//   folearn_cli learn    --graph g.txt --data d.txt --rank 1 --ell 1
//   folearn_cli eval     --graph g.txt --data d.txt --model m.txt
//   folearn_cli mc       --graph g.txt --sentence "exists x. Red(x)"
//   folearn_cli profile  --graph g.txt --radius 2
//
// Graph files use graph/io.h's text format, datasets/models learn/model_io.h.

#include <atomic>
#include <cerrno>
#include <climits>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "fo/parser.h"
#include "fo/printer.h"
#include "graph/fog.h"
#include "graph/generators.h"
#include "graph/invariants.h"
#include "graph/io.h"
#include "learn/erm.h"
#include "learn/hardness.h"
#include "learn/model_io.h"
#include "learn/nd_learner.h"
#include "learn/search_state.h"
#include "learn/sublinear.h"
#include "mc/evaluator.h"
#include "nd/splitter_game.h"
#include "nd/wcol.h"
#include "util/checkpoint.h"
#include "util/governor.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/table.h"

namespace folearn {
namespace {

// Cooperative SIGINT/SIGTERM handling. The first signal requests governor
// cancellation, so a governed search loop unwinds through its normal
// best-so-far path — the partial model is emitted, a final checkpoint is
// written when --checkpoint is set, and the process exits 3 — instead of
// the default disposition discarding the whole frontier. A second signal
// (a stuck loop, an impatient operator), or any signal while no governed
// loop is running, falls through to the default disposition and kills the
// process the ordinary way.
std::atomic<bool> g_cancel_requested{false};
volatile std::sig_atomic_t g_governed_loop_active = 0;

extern "C" void HandleTerminationSignal(int sig) {
  // Only lock-free atomic stores and sig-safe libc calls in here.
  if (g_governed_loop_active != 0 &&
      !g_cancel_requested.load(std::memory_order_relaxed)) {
    g_cancel_requested.store(true, std::memory_order_relaxed);
    return;
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void InstallSignalHandlers() {
  std::signal(SIGINT, HandleTerminationSignal);
  std::signal(SIGTERM, HandleTerminationSignal);
}

// Minimal --flag value parser: flags may appear in any order, each at most
// once (a repeated flag is almost always a typo'd invocation, and silently
// keeping one of the two values hides it).
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      if (key.size() < 3 || key[0] != '-' || key[1] != '-') {
        error_ = "expected --flag, got '" + key + "'";
        return;
      }
      if (!values_.emplace(key.substr(2), argv[i + 1]).second) {
        error_ = "duplicate flag '" + key + "'";
        return;
      }
    }
    if ((argc - first) % 2 != 0) {
      error_ = "flags must come in --key value pairs";
    }
  }

  const std::string& error() const { return error_; }

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  // Narrowing accessor: a syntactically valid integer outside int range
  // (e.g. --threads 4294967297, which a blind cast would silently truncate
  // to 1) is as much a usage error as garbage text, and exits 64 too.
  int GetInt(const std::string& key, int fallback) const {
    int64_t value = GetInt64(key, fallback);
    if (value < INT_MIN || value > INT_MAX) {
      DieInvalidValue(key, values_.find(key)->second);
    }
    return static_cast<int>(value);
  }

  int64_t GetInt64(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      size_t pos = 0;
      int64_t value = std::stoll(it->second, &pos);
      // Trailing garbage ("4x") and embedded whitespace are rejected, as
      // is anything std::stoll itself refuses (empty, overflow, text).
      if (pos != it->second.size()) throw std::invalid_argument(key);
      return value;
    } catch (const std::exception&) {
      DieInvalidValue(key, it->second);
    }
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      size_t pos = 0;
      double value = std::stod(it->second, &pos);
      if (pos != it->second.size()) throw std::invalid_argument(key);
      return value;
    } catch (const std::exception&) {
      DieInvalidValue(key, it->second);
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  // First flag not in `allowed`, or "" if all are known.
  std::string FirstUnknown(std::initializer_list<const char*> allowed) const {
    for (const auto& [key, value] : values_) {
      bool known = false;
      for (const char* candidate : allowed) {
        if (key == candidate) {
          known = true;
          break;
        }
      }
      if (!known) return key;
    }
    return "";
  }

 private:
  // Malformed numeric flag values are usage errors, same as unknown
  // flags: report which flag and exit 64 rather than crash in stoll.
  [[noreturn]] static void DieInvalidValue(const std::string& key,
                                           const std::string& value) {
    std::fprintf(stderr, "invalid value '%s' for flag '--%s'\n",
                 value.c_str(), key.c_str());
    std::exit(64);
  }

  std::map<std::string, std::string> values_;
  std::string error_;
};

// Exit code for a command that hit a resource limit and produced a
// degraded (best-so-far or partial) result — distinct from hard failure
// (1) and from mc's "sentence is false" (2).
constexpr int kExitDegraded = 3;

// Builds the optional governor from --timeout-ms / --max-work, wired to
// the signal-driven cancellation flag. Returns false (after printing an
// error) on invalid values. With `always` set a limitless governor is
// created even when neither flag is given, so Ctrl-C can still cancel the
// search cooperatively (learn uses this: its loops never route evaluation
// through the governed slow lane, so an idle governor costs nothing but
// checkpoint counting).
bool MakeGovernor(const Args& args,
                  std::optional<ResourceGovernor>& governor,
                  bool always = false) {
  int64_t timeout_ms = args.GetInt64("timeout-ms", kNoLimit);
  int64_t max_work = args.GetInt64("max-work", kNoLimit);
  if (timeout_ms != kNoLimit && timeout_ms < 0) {
    std::fprintf(stderr, "--timeout-ms must be >= 0\n");
    return false;
  }
  if (max_work != kNoLimit && max_work <= 0) {
    std::fprintf(stderr, "--max-work must be positive\n");
    return false;
  }
  if (!always && timeout_ms == kNoLimit && max_work == kNoLimit) return true;
  governor.emplace(GovernorLimits{timeout_ms, max_work},
                   &g_cancel_requested);
  g_governed_loop_active = 1;
  return true;
}

// --cache-bytes must be a non-negative byte count; absent means unbounded.
// The historical "-1 = unbounded" sentinel is no longer accepted from the
// command line — a negative budget is always a typo, not a request.
int64_t GetCacheBytes(const Args& args) {
  if (!args.Has("cache-bytes")) return BallCache::kNoBudget;
  int64_t bytes = args.GetInt64("cache-bytes", BallCache::kNoBudget);
  if (bytes < 0) {
    std::fprintf(stderr, "--cache-bytes must be >= 0\n");
    std::exit(64);
  }
  return bytes;
}

// A non-negative small-int flag (rank, ell, ...): negative values would
// CHECK-fail deep inside the library — reject them at the boundary.
int GetNonNegativeInt(const Args& args, const char* key, int fallback) {
  int value = args.GetInt(key, fallback);
  if (value < 0) {
    std::fprintf(stderr, "--%s must be >= 0\n", key);
    std::exit(64);
  }
  return value;
}

// Parses --eval vm|compiled|interpreted (default vm) into
// EvalOptions::engine. Verdicts, stats, and governor cut points are
// identical in all three modes; the interpreter is the slow reference
// oracle, the compiled tree the mid lane, and the bytecode VM the
// default. Exits 64 on any other value.
EvalEngine GetEvalEngine(const Args& args) {
  std::string mode = args.Get("eval", "vm");
  std::optional<EvalEngine> engine = ParseEvalEngine(mode);
  if (!engine.has_value()) {
    std::fprintf(
        stderr,
        "--eval must be 'vm', 'compiled', or 'interpreted', got '%s'\n",
        mode.c_str());
    std::exit(64);
  }
  return *engine;
}

// Worker threads for the parallel sweeps (0 = hardware concurrency).
// Results are identical for every value; exits 64 on a negative count.
int GetThreads(const Args& args) {
  int threads = args.GetInt("threads", 1);
  if (threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0 (0 = all cores)\n");
    std::exit(64);
  }
  return threads;
}

void ReportInterruption(const ResourceGovernor& governor) {
  std::fprintf(stderr,
               "resource limit hit (%s) after %lld work units; result is "
               "best-so-far\n",
               RunStatusName(governor.status()),
               static_cast<long long>(governor.work_used()));
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return true;
}

// Input-file failures are recoverable errors with sysexits-style codes:
// a missing/unreadable file exits 66 (EX_NOINPUT), malformed or corrupt
// contents exit 65 (EX_DATAERR) — never a crash, never UB (the Status
// loaders validate before constructing anything).
[[noreturn]] void DieStatus(const Status& status) {
  std::fprintf(stderr, "%s\n", status.message().c_str());
  std::exit(StatusExitCode(status));
}

// A required file flag that was not given is a usage error (64), in line
// with unknown/duplicate flags.
std::string GetRequiredPath(const Args& args, const char* key) {
  std::string path = args.Get(key);
  if (path.empty()) {
    std::fprintf(stderr, "missing --%s <file>\n", key);
    std::exit(64);
  }
  return path;
}

// Reads --graph in either format (text, or memory-mapped .fog binary —
// sniffed by magic, not extension); exits 64/65/66 on failure (see
// DieStatus).
Graph LoadGraph(const Args& args) {
  StatusOr<Graph> graph = LoadGraphAuto(GetRequiredPath(args, "graph"));
  if (!graph.ok()) DieStatus(graph.status());
  return *std::move(graph);
}

// graph-pack --graph g.txt --out g.fog: converts either input format to
// the versioned, checksummed `.fog` binary that loaders memory-map.
int CmdGraphPack(const Args& args) {
  Graph graph = LoadGraph(args);
  graph.Finalize();
  const std::string out = GetRequiredPath(args, "out");
  Status written = WriteFogFile(out, graph);
  if (!written.ok()) DieStatus(written);
  std::fprintf(stderr, "packed %d vertices / %lld edges into %s\n",
               graph.order(), static_cast<long long>(graph.EdgeCount()),
               out.c_str());
  return 0;
}

TrainingSet LoadData(const Args& args) {
  StatusOr<TrainingSet> data =
      LoadTrainingSetFile(GetRequiredPath(args, "data"));
  if (!data.ok()) DieStatus(data.status());
  return *std::move(data);
}

// Above this order, generate switches the sparse families to the
// at-scale CSR builders (different RNG call sequence, so small-n outputs
// stay byte-stable across versions).
constexpr int kAtScaleThreshold = 100000;

int CmdGenerate(const Args& args) {
  Rng rng(args.GetInt("seed", 1));
  int n = args.GetInt("n", 50);
  if (n < 1) {
    std::fprintf(stderr, "--n must be >= 1\n");
    return 64;
  }
  std::string family = args.Get("family", "tree");
  Graph graph(0);
  if (family == "tree") {
    graph = MakeRandomTree(n, rng);
  } else if (family == "path") {
    graph = MakePath(n);
  } else if (family == "cycle") {
    graph = MakeCycle(std::max(n, 3));
  } else if (family == "grid") {
    int side = 1;
    while (side * side < n) ++side;
    // The at-scale builder packs straight into CSR; above the threshold
    // the per-vertex build-mode lists would dominate generation time.
    graph = n >= kAtScaleThreshold ? MakeGridAtScale(side, side)
                                   : MakeGrid(side, side);
  } else if (family == "bounded-degree") {
    const int degree = GetNonNegativeInt(args, "degree", 4);
    graph = n >= kAtScaleThreshold
                ? MakeBoundedDegreeAtScale(n, degree, 3ll * n / 2, rng)
                : MakeBoundedDegree(n, degree, 3 * n / 2, rng);
  } else if (family == "er") {
    double p = args.GetDouble("p", 2.0 / n);
    if (!(p >= 0.0) || p > 1.0) {
      std::fprintf(stderr, "--p must be a probability in [0, 1]\n");
      return 64;
    }
    graph = MakeErdosRenyi(n, p, rng);
  } else if (family == "star") {
    graph = MakeStar(std::max(n - 1, 1));
  } else if (family == "pa") {
    int attach = args.GetInt("attach", 1);
    if (attach < 1) {
      std::fprintf(stderr, "--attach must be >= 1\n");
      return 64;
    }
    graph = n >= kAtScaleThreshold
                ? MakePreferentialAttachmentAtScale(n, attach, rng)
                : MakePreferentialAttachment(n, attach, rng);
  } else {
    std::fprintf(stderr,
                 "unknown family '%s' (tree|path|cycle|grid|"
                 "bounded-degree|er|star|pa)\n",
                 family.c_str());
    return 64;
  }
  // --color Name:prob, repeatable via comma. The probability is parsed
  // with full validation (garbage like "Red:abc" or an out-of-range value
  // is a usage error, not an uncaught std::stod exception).
  if (args.Has("color")) {
    for (const std::string& spec : Split(args.Get("color"), ',')) {
      std::vector<std::string> parts = Split(spec, ':');
      if (parts.size() != 2 || parts[0].empty()) {
        std::fprintf(stderr, "bad --color spec '%s' (Name:prob)\n",
                     spec.c_str());
        return 64;
      }
      double prob = 0.0;
      try {
        size_t pos = 0;
        prob = std::stod(parts[1], &pos);
        if (pos != parts[1].size()) throw std::invalid_argument(spec);
      } catch (const std::exception&) {
        std::fprintf(stderr,
                     "bad --color probability '%s' in spec '%s'\n",
                     parts[1].c_str(), spec.c_str());
        return 64;
      }
      if (!(prob >= 0.0) || prob > 1.0) {
        std::fprintf(stderr,
                     "--color probability must be in [0, 1], got '%s'\n",
                     parts[1].c_str());
        return 64;
      }
      AddRandomColors(graph, {parts[0]}, prob, rng);
    }
  }
  std::string text = ToText(graph);
  std::string out_path = args.Get("out");
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
  } else if (!WriteFile(out_path, text)) {
    std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  return 0;
}

// FNV-1a fingerprint of the learning problem: the input files plus every
// parameter that changes the candidate scan. Thread count, evaluation
// mode, and resource limits are deliberately excluded — they never change
// the scan's semantics, so a checkpoint written under one of them resumes
// under another (e.g. save with --threads 8, resume with --threads 1).
uint64_t ProblemFingerprint(uint64_t graph_fingerprint,
                            const std::string& data_text,
                            const std::string& learner, int rank, int radius,
                            int ell, double epsilon) {
  // For text graphs LoadGraphAuto's fingerprint is Fnv1a64 of the file
  // bytes — the value this function hashed directly before the binary
  // format existed — so problem fingerprints (and therefore resumable
  // checkpoints) are unchanged for text inputs.
  uint64_t fp = graph_fingerprint;
  fp = Fnv1a64(data_text, fp);
  char knobs[160];
  std::snprintf(knobs, sizeof(knobs),
                "learner=%s rank=%d radius=%d ell=%d epsilon=%.17g",
                learner.c_str(), rank, radius, ell, epsilon);
  return Fnv1a64(knobs, fp);
}

int CmdLearn(const Args& args, ResourceGovernor* governor) {
  // learn loads through LoadGraphAuto (text or .fog, sniffed by content)
  // and keeps the returned fingerprint: it feeds the problem fingerprint
  // below. The data file is still read raw for the same reason.
  const std::string graph_path = GetRequiredPath(args, "graph");
  const std::string data_path = GetRequiredPath(args, "data");
  uint64_t graph_fingerprint = 0;
  StatusOr<Graph> graph = LoadGraphAuto(graph_path, &graph_fingerprint);
  StatusOr<std::string> data_text = ReadFileToString(data_path);
  if (!data_text.ok()) DieStatus(data_text.status());
  if (!graph.ok()) DieStatus(graph.status());  // message already names the path
  StatusOr<TrainingSet> data = ParseTrainingSet(*data_text);
  if (!data.ok()) {
    DieStatus(Status(data.status().code(),
                     data_path + ": " + data.status().message()));
  }

  ErmOptions options;
  options.rank = GetNonNegativeInt(args, "rank", 1);
  options.radius = args.GetInt("radius", -1);
  if (options.radius < -1) {
    std::fprintf(stderr, "--radius must be >= 0 (or -1 for automatic)\n");
    return 64;
  }
  options.governor = governor;
  options.threads = GetThreads(args);
  options.cache_bytes = GetCacheBytes(args);
  int ell = GetNonNegativeInt(args, "ell", 0);
  std::string learner = args.Get("learner", "brute");
  double epsilon = args.GetDouble("epsilon", 0.2);
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    std::fprintf(stderr, "--epsilon must be in (0, 1)\n");
    return 64;
  }
  if (learner != "brute" && learner != "sublinear" && learner != "nd") {
    std::fprintf(stderr, "unknown learner '%s' (brute|sublinear|nd)\n",
                 learner.c_str());
    return 64;
  }

  // Checkpoint/resume wiring. --checkpoint-every-ms and --crash-at-save
  // modulate saving, so they require --checkpoint; --resume alone is fine
  // (finish an interrupted run without writing further checkpoints).
  std::string checkpoint_path = args.Get("checkpoint");
  if (checkpoint_path.empty() &&
      (args.Has("checkpoint-every-ms") || args.Has("crash-at-save"))) {
    std::fprintf(stderr,
                 "--checkpoint-every-ms/--crash-at-save require "
                 "--checkpoint <file>\n");
    return 64;
  }
  int64_t every_ms = args.GetInt64("checkpoint-every-ms", 0);
  if (every_ms < 0) {
    std::fprintf(stderr, "--checkpoint-every-ms must be >= 0\n");
    return 64;
  }
  const uint64_t fingerprint = ProblemFingerprint(
      graph_fingerprint, *data_text, learner, options.rank, options.radius,
      ell, epsilon);
  std::optional<SearchFrontier> frontier;
  if (args.Has("resume")) {
    StatusOr<SearchFrontier> loaded = LoadFrontier(args.Get("resume"));
    if (!loaded.ok()) DieStatus(loaded.status());
    Status compatible =
        CheckFrontierCompatible(*loaded, learner, fingerprint);
    if (!compatible.ok()) DieStatus(compatible);
    frontier = *std::move(loaded);
  }
  std::optional<SearchCheckpointer> checkpointer;
  if (!checkpoint_path.empty()) {
    checkpointer.emplace(checkpoint_path,
                         static_cast<double>(every_ms));
    if (args.Has("crash-at-save")) {
      int64_t crash_at = args.GetInt64("crash-at-save", -1);
      if (crash_at <= 0) {
        std::fprintf(stderr, "--crash-at-save must be positive\n");
        return 64;
      }
      checkpointer->set_crash_after_saves(crash_at);
    }
  }
  options.scan.checkpointer =
      checkpointer.has_value() ? &*checkpointer : nullptr;
  options.scan.resume = frontier.has_value() ? &*frontier : nullptr;
  options.scan.fingerprint = fingerprint;

  ErmResult result;
  if (learner == "brute") {
    result = BruteForceErm(*graph, *data, ell, options);
  } else if (learner == "sublinear") {
    result = SublinearErm(*graph, *data, ell, options).erm;
  } else {
    NdLearnerOptions nd;
    nd.rank = options.rank;
    nd.radius = options.radius;
    nd.ell_star = std::max(ell, 1);
    nd.epsilon = epsilon;
    nd.governor = governor;
    nd.threads = options.threads;
    nd.cache_bytes = options.cache_bytes;
    nd.scan = options.scan;
    result = LearnNowhereDense(*graph, *data, nd).erm;
  }
  // An interrupted scan reports the error over the examples it saw
  // before the cut, which can be optimistic; `eval` gives the true one.
  std::fprintf(stderr, "training error%s: %.4f over %lld local types\n",
               IsInterrupted(result.status) ? " (partial)" : "",
               result.training_error,
               static_cast<long long>(result.distinct_types_seen));
  Hypothesis hypothesis = result.hypothesis.ToExplicit();
  std::string text = HypothesisToText(hypothesis);
  std::string out_path = args.Get("out");
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
  } else if (!WriteFile(out_path, text)) {
    std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  if (IsInterrupted(result.status)) {
    FOLEARN_CHECK(governor != nullptr);
    ReportInterruption(*governor);
    return kExitDegraded;
  }
  return 0;
}

int CmdEval(const Args& args, ResourceGovernor* governor) {
  Graph graph = LoadGraph(args);
  TrainingSet data = LoadData(args);
  StatusOr<Hypothesis> hypothesis =
      LoadHypothesisFile(GetRequiredPath(args, "model"));
  if (!hypothesis.ok()) DieStatus(hypothesis.status());
  EvalOptions eval_options;
  eval_options.governor = governor;
  eval_options.engine = GetEvalEngine(args);
  eval_options.cache_bytes = GetCacheBytes(args);
  double err = TrainingError(graph, *hypothesis, data, eval_options);
  std::printf("error: %.4f on %zu examples\n", err, data.size());
  if (GovernorInterrupted(governor)) {
    ReportInterruption(*governor);
    return kExitDegraded;
  }
  return 0;
}

int CmdMc(const Args& args, ResourceGovernor* governor) {
  Graph graph = LoadGraph(args);
  std::string sentence_text = args.Get("sentence");
  std::string error;
  std::optional<FormulaRef> sentence = ParseFormula(sentence_text, &error);
  if (!sentence.has_value()) {
    std::fprintf(stderr, "sentence parse error: %s\n", error.c_str());
    return 1;
  }
  bool value;
  if (args.Has("via-erm")) {
    TypeErmOracle oracle(/*relaxation_ell=*/0, governor);
    ModelCheckOptions mc_options;
    mc_options.governor = governor;
    HardnessStats stats;
    value = ModelCheckViaErm(graph, *sentence, oracle, mc_options, &stats);
    std::fprintf(stderr,
                 "via ERM oracle: %lld oracle calls, max |T| = %d, %lld "
                 "recursion nodes\n",
                 static_cast<long long>(stats.oracle_calls),
                 stats.max_representatives,
                 static_cast<long long>(stats.recursion_nodes));
  } else {
    EvalOptions eval_options;
    eval_options.governor = governor;
    eval_options.engine = GetEvalEngine(args);
    eval_options.cache_bytes = GetCacheBytes(args);
    value = EvaluateSentence(graph, *sentence, eval_options);
  }
  if (GovernorInterrupted(governor)) {
    // The truth value is unspecified once the evaluation was cut short —
    // do not report one.
    std::printf("indeterminate\n");
    ReportInterruption(*governor);
    return kExitDegraded;
  }
  std::printf("%s\n", value ? "true" : "false");
  return value ? 0 : 2;
}

int CmdProfile(const Args& args) {
  Graph graph = LoadGraph(args);
  int radius = args.GetInt("radius", 2);
  Table table({"invariant", "value"});
  table.AddRow({"order", std::to_string(graph.order())});
  table.AddRow({"edges", std::to_string(graph.EdgeCount())});
  table.AddRow({"max degree", std::to_string(graph.MaxDegree())});
  table.AddRow({"degeneracy",
                std::to_string(ComputeDegeneracy(graph).degeneracy)});
  int girth = ComputeGirth(graph);
  table.AddRow({"girth", girth == kNoGirth ? "∞ (forest)"
                                           : std::to_string(girth)});
  table.AddRow({"diameter", std::to_string(ComputeDiameter(graph))});
  table.AddRow(
      {"wcol_" + std::to_string(radius),
       std::to_string(WeakColoringNumberDegeneracyOrder(graph, radius))});
  auto splitter = IsForest(graph) ? MakeTreeSplitter()
                                  : MakeGreedyDegreeSplitter();
  auto connector = MakeGreedyBallConnector();
  SplitterGameResult game =
      PlaySplitterGame(graph, radius, 3 * radius + 20, *splitter,
                       *connector);
  table.AddRow({"splitter rounds (r=" + std::to_string(radius) + ")",
                game.splitter_won ? std::to_string(game.rounds_used)
                                  : "> budget"});
  table.Print();
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: folearn_cli <command> [--flag value]...\n"
      "  generate --family tree|path|cycle|grid|bounded-degree|er|star|pa\n"
      "           --n N [--seed S] [--color Name:prob[,Name:prob]]\n"
      "           [--out g.txt]\n"
      "  learn    --graph g.txt --data d.txt [--rank q] [--radius r]\n"
      "           [--ell l] [--learner brute|sublinear|nd] [--out m.txt]\n"
      "           [--checkpoint c.ckpt] [--checkpoint-every-ms T]\n"
      "           [--resume c.ckpt] [--cache-bytes B]\n"
      "  eval     --graph g.txt --data d.txt --model m.txt [--cache-bytes B]\n"
      "  mc       --graph g.txt --sentence \"...\" [--via-erm 1]\n"
      "  profile  --graph g.txt [--radius r]\n"
      "  graph-pack --graph g.txt --out g.fog   (pack into the mmap-able\n"
      "           binary graph format; --graph flags everywhere accept\n"
      "           either format, sniffed by content)\n"
      "every command accepts [--timeout-ms T] [--max-work W] and\n"
      "[--threads N] (0 = all cores; results are identical for any N);\n"
      "eval and mc also accept [--eval vm|compiled|interpreted] (default\n"
      "vm; results are identical, interpreted is the reference oracle,\n"
      "vm is the bytecode engine); a run cut short emits best-so-far\n"
      "and exits 3; SIGINT/SIGTERM take the same path (best-so-far model\n"
      "+ final checkpoint, exit 3). learn --checkpoint persists the\n"
      "search frontier so a killed run can be continued with --resume\n"
      "(byte-identical result to an uninterrupted run, for any\n"
      "--threads). exit codes: 64 usage,\n"
      "65 corrupt/malformed input, 66 missing input file, 70 injected\n"
      "crash (--crash-at-save, tests only)\n");
  return 64;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Args args(argc, argv, 2);
  if (!args.error().empty()) {
    std::fprintf(stderr, "%s\n", args.error().c_str());
    return 64;
  }

  std::string unknown;
  if (command == "generate") {
    unknown = args.FirstUnknown({"family", "n", "seed", "color", "degree",
                                 "p", "attach", "out", "timeout-ms",
                                 "max-work", "threads"});
  } else if (command == "learn") {
    unknown = args.FirstUnknown({"graph", "data", "rank", "radius", "ell",
                                 "learner", "epsilon", "out", "timeout-ms",
                                 "max-work", "threads", "checkpoint",
                                 "checkpoint-every-ms", "resume",
                                 "crash-at-save", "cache-bytes"});
  } else if (command == "eval") {
    unknown = args.FirstUnknown({"graph", "data", "model", "eval",
                                 "timeout-ms", "max-work", "threads",
                                 "cache-bytes"});
  } else if (command == "mc") {
    unknown = args.FirstUnknown({"graph", "sentence", "via-erm", "eval",
                                 "timeout-ms", "max-work", "threads",
                                 "cache-bytes"});
  } else if (command == "profile") {
    unknown = args.FirstUnknown({"graph", "radius", "timeout-ms",
                                 "max-work", "threads"});
  } else if (command == "graph-pack") {
    unknown = args.FirstUnknown({"graph", "out", "timeout-ms", "max-work",
                                 "threads"});
  } else {
    return Usage();
  }
  if (!unknown.empty()) {
    std::fprintf(stderr, "unknown flag '--%s' for command '%s'\n",
                 unknown.c_str(), command.c_str());
    return 64;
  }

  InstallSignalHandlers();

  // learn always runs governed (possibly limitless) so SIGINT/SIGTERM can
  // cancel the scan cooperatively — best-so-far model, final checkpoint,
  // exit 3. eval/mc attach the governor only when limits were requested,
  // because a governor's mere presence routes formula evaluation through
  // the slower mirrored lane; an ungoverned eval/mc dies on the signal's
  // default disposition instead.
  std::optional<ResourceGovernor> governor;
  if (!MakeGovernor(args, governor, /*always=*/command == "learn")) {
    return 64;
  }
  ResourceGovernor* gov = governor.has_value() ? &*governor : nullptr;

  // generate and profile run no governed search loops; the limits are
  // accepted for interface uniformity but cannot trip there.
  if (command == "generate" || command == "profile" ||
      command == "graph-pack") {
    g_governed_loop_active = 0;  // Ctrl-C kills these the normal way
    if (command == "generate") return CmdGenerate(args);
    return command == "profile" ? CmdProfile(args) : CmdGraphPack(args);
  }
  if (command == "learn") return CmdLearn(args, gov);
  if (command == "eval") return CmdEval(args, gov);
  return CmdMc(args, gov);
}

}  // namespace
}  // namespace folearn

int main(int argc, char** argv) { return folearn::Main(argc, argv); }
