// folearn_client: command-line client for the folearnd daemon.
//
//   folearn_client --socket <path> <op> [--field value]... [--*-file path]...
//
// The op becomes the request's "op" field and every --key value pair a
// request field. Flags ending in "-file" read the named file and send its
// contents under the key without the suffix, so the existing text formats
// flow straight from disk to the daemon:
//
//   folearn_client --socket S load-graph --graph-file g.txt
//   folearn_client --socket S load-graph --graph-path g.fog   # daemon-side
//                                                             # open + mmap
//   folearn_client --socket S learn --session 1 --data-file d.txt --rank 1
//   folearn_client --socket S query --session 1 --sentence "exists x. Red(x)"
//   folearn_client --socket S stats
//   folearn_client --socket S shutdown
//
// Response fields print one per line as "key: value" (large payload
// fields — model, graph — print to stdout verbatim with --out -, or are
// written to the path given by --out). Exit code: 0 for status=ok, 3 for
// partial/shed, the response "code" (64/65/66) for errors, 1 for
// transport failures (65 when the transport failure is data loss).
//
// Fault tolerance: --retries N re-sends retry-safe failures (shed
// responses, daemon down or restarting) with capped exponential backoff
// (--backoff-ms, jittered); --reconnect 0 disables re-dialing the socket.
// A learn sent with retries and no explicit --request-id gets a generated
// one, so a retry that crosses a daemon restart is deduplicated
// server-side instead of learning twice.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "server/client.h"
#include "util/checkpoint.h"
#include "util/status.h"

namespace folearn {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: folearn_client --socket <path> <op> [--field value]...\n"
      "  ops: ping load-graph close-session learn evaluate query\n"
      "       get-model list-models stats shutdown\n"
      "  --<key>-file <path> sends the file contents as field <key>;\n"
      "  --graph-path <path> sends the path itself (the daemon opens it:\n"
      "  .fog files are memory-mapped and journaled by path);\n"
      "  --out <path> writes the response's model/payload field there\n"
      "  (default: print all fields).\n"
      "  --retries N retries shed/unavailable failures with capped\n"
      "  exponential backoff (--backoff-ms, default 50) and jitter;\n"
      "  --reconnect 0 disables re-dialing after a transport failure;\n"
      "  --io-timeout-ms N bounds every socket receive (default 0 = wait\n"
      "  forever); a timeout is retry-safe kUnavailable.\n");
  return 64;
}

// Parses a decimal int64 flag value; exits 64 on malformed input, the
// same convention as the daemon's flag parser.
int64_t ParseInt64Flag(const std::string& key, const std::string& value) {
  try {
    size_t pos = 0;
    int64_t parsed = std::stoll(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    std::fprintf(stderr, "invalid value '%s' for flag '--%s'\n",
                 value.c_str(), key.c_str());
    std::exit(64);
  }
}

// A request-id unique enough for the dedup window: wall-clock nanos plus
// entropy, generated only when the user asked for retries but supplied no
// id of their own.
std::string GenerateRequestId() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const uint64_t nanos =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
  std::random_device entropy;
  return "auto-" + std::to_string(nanos) + "-" +
         std::to_string(static_cast<uint64_t>(entropy()));
}

int Main(int argc, char** argv) {
  std::string socket_path;
  std::string op;
  std::string out_path;
  RetryPolicy policy;
  Message request;
  std::vector<std::pair<std::string, std::string>> raw_flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag '%s' is missing its value\n", arg.c_str());
        return 64;
      }
      raw_flags.emplace_back(arg.substr(2), argv[i + 1]);
      ++i;
    } else if (op.empty()) {
      op = arg;
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
      return 64;
    }
  }
  if (op.empty()) return Usage();
  request.Set("op", op);
  bool retries_requested = false;
  for (const auto& [key, value] : raw_flags) {
    if (key == "socket") {
      socket_path = value;
    } else if (key == "out") {
      out_path = value;
    } else if (key == "retries") {
      int64_t n = ParseInt64Flag(key, value);
      if (n < 0) {
        std::fprintf(stderr, "--retries must be >= 0\n");
        return 64;
      }
      policy.max_retries = static_cast<int>(n);
      retries_requested = true;
    } else if (key == "backoff-ms") {
      policy.backoff_ms = ParseInt64Flag(key, value);
      if (policy.backoff_ms < 0) {
        std::fprintf(stderr, "--backoff-ms must be >= 0\n");
        return 64;
      }
    } else if (key == "reconnect") {
      if (value != "0" && value != "1") {
        std::fprintf(stderr, "--reconnect takes 0 or 1\n");
        return 64;
      }
      policy.reconnect = value == "1";
    } else if (key == "io-timeout-ms") {
      policy.io_timeout_ms = ParseInt64Flag(key, value);
      if (policy.io_timeout_ms < 0) {
        std::fprintf(stderr, "--io-timeout-ms must be >= 0\n");
        return 64;
      }
    } else if (key == "graph-path") {
      // The path itself, not the contents: the daemon memory-maps .fog
      // files and journals file-backed sessions by path + fingerprint,
      // which only works if it opens the file on its side of the socket.
      request.Set("graph-file", value);
    } else if (key.size() > 5 && key.rfind("-file") == key.size() - 5) {
      StatusOr<std::string> contents = ReadFileToString(value);
      if (!contents.ok()) {
        std::fprintf(stderr, "%s\n", contents.status().message().c_str());
        return StatusExitCode(contents.status());
      }
      request.Set(key.substr(0, key.size() - 5), *contents);
    } else {
      request.Set(key, value);
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "missing --socket <path>\n");
    return 64;
  }
  Status path_ok = ValidateSocketPath(socket_path);
  if (!path_ok.ok()) {
    std::fprintf(stderr, "%s\n", path_ok.message().c_str());
    return 64;
  }
  // Retried learns need a request-id to be idempotent across a daemon
  // restart; generate one when the user didn't supply their own.
  if (retries_requested && op == "learn" && !request.Has("request-id")) {
    request.Set("request-id", GenerateRequestId());
  }

  RetryingClient client(socket_path, policy);
  StatusOr<Message> response = client.Call(request);
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().message().c_str());
    // Terminal data loss keeps its sysexits analogue; every other
    // transport failure is the generic environment failure.
    return response.status().code() == StatusCode::kDataLoss ? 65 : 1;
  }

  // Large payloads (model text) go to --out; everything else prints as
  // key: value lines, status metadata to stderr so pipelines stay clean.
  // "error" is the diagnostic message on status=error, but a payload (the
  // evaluated error fraction) on ok/partial responses — route accordingly.
  const bool failed = response->Get("status") == kStatusError;
  for (const auto& [key, value] : response->fields) {
    if (key == "model" && !out_path.empty()) {
      if (out_path == "-") {
        std::fputs(value.c_str(), stdout);
      } else {
        std::ofstream out(out_path);
        if (!out || !(out << value)) {
          std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
          return 1;
        }
      }
      continue;
    }
    if (key == "status" || key == "code" || key == "run-status" ||
        (key == "error" && failed)) {
      std::fprintf(stderr, "%s: %s\n", key.c_str(), value.c_str());
    } else {
      std::printf("%s: %s\n", key.c_str(), value.c_str());
    }
  }
  return ResponseExitCode(*response);
}

}  // namespace
}  // namespace folearn

int main(int argc, char** argv) { return folearn::Main(argc, argv); }
