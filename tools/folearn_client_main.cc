// folearn_client: command-line client for the folearnd daemon.
//
//   folearn_client --socket <path> <op> [--field value]... [--*-file path]...
//
// The op becomes the request's "op" field and every --key value pair a
// request field. Flags ending in "-file" read the named file and send its
// contents under the key without the suffix, so the existing text formats
// flow straight from disk to the daemon:
//
//   folearn_client --socket S load-graph --graph-file g.txt
//   folearn_client --socket S learn --session 1 --data-file d.txt --rank 1
//   folearn_client --socket S query --session 1 --sentence "exists x. Red(x)"
//   folearn_client --socket S stats
//   folearn_client --socket S shutdown
//
// Response fields print one per line as "key: value" (large payload
// fields — model, graph — print to stdout verbatim with --out -, or are
// written to the path given by --out). Exit code: 0 for status=ok, 3 for
// partial/shed, the response "code" (64/65/66) for errors, 1 for
// transport failures.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "server/client.h"
#include "util/checkpoint.h"
#include "util/status.h"

namespace folearn {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: folearn_client --socket <path> <op> [--field value]...\n"
      "  ops: ping load-graph close-session learn evaluate query stats\n"
      "       shutdown\n"
      "  --<key>-file <path> sends the file contents as field <key>;\n"
      "  --out <path> writes the response's model/payload field there\n"
      "  (default: print all fields).\n");
  return 64;
}

int Main(int argc, char** argv) {
  std::string socket_path;
  std::string op;
  std::string out_path;
  Message request;
  std::vector<std::pair<std::string, std::string>> raw_flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag '%s' is missing its value\n", arg.c_str());
        return 64;
      }
      raw_flags.emplace_back(arg.substr(2), argv[i + 1]);
      ++i;
    } else if (op.empty()) {
      op = arg;
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
      return 64;
    }
  }
  if (op.empty()) return Usage();
  request.Set("op", op);
  for (const auto& [key, value] : raw_flags) {
    if (key == "socket") {
      socket_path = value;
    } else if (key == "out") {
      out_path = value;
    } else if (key.size() > 5 && key.rfind("-file") == key.size() - 5) {
      StatusOr<std::string> contents = ReadFileToString(value);
      if (!contents.ok()) {
        std::fprintf(stderr, "%s\n", contents.status().message().c_str());
        return StatusExitCode(contents.status());
      }
      request.Set(key.substr(0, key.size() - 5), *contents);
    } else {
      request.Set(key, value);
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "missing --socket <path>\n");
    return 64;
  }

  StatusOr<Client> client = Client::Connect(socket_path);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().message().c_str());
    return 1;
  }
  StatusOr<Message> response = client->Call(request);
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().message().c_str());
    return 1;
  }

  // Large payloads (model text) go to --out; everything else prints as
  // key: value lines, status metadata to stderr so pipelines stay clean.
  // "error" is the diagnostic message on status=error, but a payload (the
  // evaluated error fraction) on ok/partial responses — route accordingly.
  const bool failed = response->Get("status") == kStatusError;
  for (const auto& [key, value] : response->fields) {
    if (key == "model" && !out_path.empty()) {
      if (out_path == "-") {
        std::fputs(value.c_str(), stdout);
      } else {
        std::ofstream out(out_path);
        if (!out || !(out << value)) {
          std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
          return 1;
        }
      }
      continue;
    }
    if (key == "status" || key == "code" || key == "run-status" ||
        (key == "error" && failed)) {
      std::fprintf(stderr, "%s: %s\n", key.c_str(), value.c_str());
    } else {
      std::printf("%s: %s\n", key.c_str(), value.c_str());
    }
  }
  return ResponseExitCode(*response);
}

}  // namespace
}  // namespace folearn

int main(int argc, char** argv) { return folearn::Main(argc, argv); }
