#!/bin/sh
# Runs every bench_* binary with --json and aggregates the per-binary
# JSONL records into one JSON array.
#
# Usage: tools/run_benches.sh [build_dir] [output.json]
#   build_dir   directory containing the bench binaries (default: build)
#   output.json aggregated report (default: BENCH_parallel.json in the
#               repo root)
#
# bench_server measures the folearnd daemon rather than the batch paths;
# its records are split out into BENCH_server.json next to output.json,
# and the run FAILS if the black-pressure-tier record shows any
# substantive request answered with anything but a retry-safe shed — a
# daemon that computes at black is one OOM kill from losing every
# session. Every record also carries peak_rss_bytes (the binary's RSS
# high-water mark), so --compare diffs catch memory regressions too.
# bench_vm (the bytecode-VM E9 grid) is likewise split into BENCH_vm.json,
# and the run FAILS if any of its E9 rows has the VM slower than the tree
# engine — the VM's whole reason to exist is that row. bench_graph_scale
# (the million-vertex CSR/.fog sweep) splits into BENCH_graph.json, and
# the run FAILS if the memory-mapped .fog load at the largest measured n
# is not at least 10x faster than the text parse — the binary format's
# whole reason to exist is that row.
#
# Compare mode: tools/run_benches.sh --compare baseline.json other.json
#   joins two aggregated reports on (bench, config) and prints a per-row
#   speedup table (baseline_ms / other_ms > 1 means `other` is faster).
#   Reports carrying vm/e9_grid records additionally get a tree-vs-VM
#   speedup table per file, with the same VM ≥ tree gate applied to
#   `other` (a regression exits non-zero).
#
# A binary that fails (a VIOLATION self-check, a crash) aborts the whole
# run immediately — a partial aggregate silently missing benches has
# repeatedly been mistaken for a complete one. Each bench's JSONL is also
# validated (object-per-line, required fields) before the aggregate is
# declared good. Human-readable tables still go to stdout.

set -u

repo_root=$(dirname "$0")/..

# Tree-vs-VM speedup columns from a report's vm/e9_grid records (one row
# per n), printed only when such records exist. With `enforce` non-empty,
# exits 1 if any row has the VM slower than the tree engine.
vm_speedup_table() {
  file=$1
  enforce=${2:-}
  grep -q '"vm/e9_grid"' "$file" 2>/dev/null || return 0
  echo ""
  echo "tree-vs-VM E9 grid speedups in $file:"
  awk -v enforce="$enforce" '
    function field(line, name,    rest) {
      rest = line
      if (!sub(".*\"" name "\": \"?", "", rest)) return ""
      sub("\"?[,}].*", "", rest)
      return rest
    }
    /"vm\/e9_grid"/ {
      config = field($0, "config")
      ms = field($0, "wall_ms") + 0
      n = config; sub(".*n=", "", n)
      engine = config; sub(".*engine=", "", engine); sub(" .*", "", engine)
      if (engine == "compiled") tree[n] = ms
      if (engine == "vm") { if (!(n in vm)) order[cnt++] = n; vm[n] = ms }
    }
    END {
      printf "%-6s %12s %12s %9s\n", "n", "tree ms", "vm ms", "vm/tree"
      bad = 0
      for (i = 0; i < cnt; i++) {
        n = order[i]
        if (!(n in tree)) continue
        ratio = vm[n] > 0 ? tree[n] / vm[n] : 0
        printf "%-6s %12.3f %12.3f %8.2fx\n", n, tree[n], vm[n], ratio
        if (vm[n] > tree[n]) bad = 1
      }
      if (bad && enforce != "") {
        print "VM E9 row regressed below the tree engine" > "/dev/stderr"
        exit 1
      }
    }
  ' "$file" || return 1
}

# Text-parse vs mmap load columns from a report's graph_scale/load
# records (one row per n). With `enforce` non-empty, exits 1 if the fog
# load at the largest n is not at least 10x faster than the text parse.
graph_load_table() {
  file=$1
  enforce=${2:-}
  grep -q '"graph_scale/load"' "$file" 2>/dev/null || return 0
  echo ""
  echo "text-vs-mmap graph load speedups in $file:"
  awk -v enforce="$enforce" '
    function field(line, name,    rest) {
      rest = line
      if (!sub(".*\"" name "\": \"?", "", rest)) return ""
      sub("\"?[,}].*", "", rest)
      return rest
    }
    /"graph_scale\/load"/ {
      config = field($0, "config")
      ms = field($0, "wall_ms") + 0
      n = config; sub(".*n=", "", n)
      mode = config; sub(".*mode=", "", mode); sub(" .*", "", mode)
      if (mode == "text") text[n] = ms
      if (mode == "fog") { if (!(n in fog)) order[cnt++] = n; fog[n] = ms }
      if (n + 0 > max_n) max_n = n + 0
    }
    END {
      printf "%-9s %12s %12s %9s\n", "n", "text ms", "fog ms", "text/fog"
      bad = 0
      for (i = 0; i < cnt; i++) {
        n = order[i]
        if (!(n in text)) continue
        ratio = fog[n] > 0 ? text[n] / fog[n] : 0
        printf "%-9s %12.3f %12.3f %8.2fx\n", n, text[n], fog[n], ratio
        if (n + 0 == max_n && ratio < 10) bad = 1
      }
      if (bad && enforce != "") {
        print "mmap .fog load is under 10x the text parse at the " \
              "largest n" > "/dev/stderr"
        exit 1
      }
    }
  ' "$file" || return 1
}

if [ "${1:-}" = "--compare" ]; then
  baseline=${2:-}
  other=${3:-}
  if [ -z "$baseline" ] || [ -z "$other" ]; then
    echo "usage: run_benches.sh --compare baseline.json other.json" >&2
    exit 64
  fi
  for f in "$baseline" "$other"; do
    if [ ! -f "$f" ]; then
      echo "run_benches.sh: '$f' not found" >&2
      exit 1
    fi
  done
  # The reports are the writer's own one-record-per-line output wrapped in
  # [ ... ], so a line-oriented awk join on (bench, config) is reliable.
  awk '
    function field(line, name,    rest) {
      rest = line
      if (!sub(".*\"" name "\": \"?", "", rest)) return ""
      sub("\"?[,}].*", "", rest)
      return rest
    }
    /"bench"/ {
      key = field($0, "bench") "|" field($0, "config")
      ms = field($0, "wall_ms") + 0
      if (NR == FNR) { base[key] = ms; order[n++] = key; next }
      if (key in base) seen[key] = ms
    }
    END {
      printf "%-58s %12s %12s %9s\n", "bench | config", "baseline ms", \
             "other ms", "speedup"
      for (i = 0; i < n; i++) {
        key = order[i]
        if (!(key in seen)) continue
        printf "%-58s %12.3f %12.3f %8.2fx\n", key, base[key], seen[key], \
               seen[key] > 0 ? base[key] / seen[key] : 0
      }
    }
  ' "$baseline" "$other"
  vm_speedup_table "$baseline" || exit 1
  vm_speedup_table "$other" enforce || exit 1
  graph_load_table "$baseline" || exit 1
  graph_load_table "$other" enforce || exit 1
  exit 0
fi
build_dir=${1:-"$repo_root/build"}
out=${2:-"$repo_root/BENCH_parallel.json"}
server_out=$(dirname "$out")/BENCH_server.json
vm_out=$(dirname "$out")/BENCH_vm.json
graph_out=$(dirname "$out")/BENCH_graph.json

if [ ! -d "$build_dir" ]; then
  echo "run_benches.sh: build dir '$build_dir' not found" >&2
  exit 1
fi

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# Every record line must be a single JSON object carrying the fields the
# aggregate and --compare mode rely on. Pure awk (no jq in the image):
# brace-delimited, balanced quotes, and the two join keys present.
validate_jsonl() {
  awk '
    {
      if ($0 !~ /^\{.*\}$/) {
        printf "line %d is not a JSON object: %s\n", NR, $0; bad = 1; exit 1
      }
      if ($0 !~ /"bench"/ || $0 !~ /"wall_ms"/) {
        printf "line %d lacks bench/wall_ms: %s\n", NR, $0; bad = 1; exit 1
      }
      quotes = gsub(/"/, "\"")
      if (quotes % 2 != 0) {
        printf "line %d has unbalanced quotes\n", NR; bad = 1; exit 1
      }
      n++
    }
    END { if (!bad && n == 0) { print "no records"; exit 1 } }
  ' "$1"
}

ran=0
for bench_path in "$build_dir"/bench/bench_*; do
  [ -f "$bench_path" ] && [ -x "$bench_path" ] || continue
  bench=$(basename "$bench_path")
  echo "=== $bench ==="
  if ! "$bench_path" --json "$tmpdir/$bench.jsonl"; then
    echo "run_benches.sh: $bench exited non-zero, aborting" >&2
    exit 1
  fi
  if ! err=$(validate_jsonl "$tmpdir/$bench.jsonl"); then
    echo "run_benches.sh: $bench wrote invalid JSONL: $err" >&2
    exit 1
  fi
  ran=$((ran + 1))
done

if [ "$ran" -eq 0 ]; then
  echo "run_benches.sh: no bench binaries found under $build_dir/bench" >&2
  exit 1
fi

# JSONL -> one JSON array. Pure shell: join all record lines with commas.
write_array() {
  target=$1
  shift
  {
    printf '[\n'
    first=1
    for jsonl in "$@"; do
      [ -f "$jsonl" ] || continue
      while IFS= read -r line; do
        [ -n "$line" ] || continue
        if [ "$first" -eq 1 ]; then first=0; else printf ',\n'; fi
        printf '  %s' "$line"
      done < "$jsonl"
    done
    printf '\n]\n'
  } > "$target"
  # The array must open, close, and hold at least one record.
  if ! head -1 "$target" | grep -q '^\[' \
      || ! tail -1 "$target" | grep -q '^\]' \
      || ! grep -q '"bench"' "$target"; then
    echo "run_benches.sh: aggregate $target is not a JSON array" >&2
    exit 1
  fi
}

# The daemon report is split from the batch report (tmpdir paths come
# from mktemp, so the unquoted list is safe).
main_files=""
for jsonl in "$tmpdir"/*.jsonl; do
  [ -f "$jsonl" ] || continue
  case $(basename "$jsonl") in
    bench_server.jsonl) continue ;;
    bench_vm.jsonl) continue ;;
    bench_graph_scale.jsonl) continue ;;
  esac
  main_files="$main_files $jsonl"
done
write_array "$out" $main_files
echo "wrote $out ($ran benches, $(grep -c '"bench"' "$out") records)"

if [ -f "$tmpdir/bench_server.jsonl" ]; then
  write_array "$server_out" "$tmpdir/bench_server.jsonl"
  echo "wrote $server_out ($(grep -c '"bench"' "$server_out") records)"
  # Black-tier contract: the pressure bench counts substantive responses
  # that were NOT a retry-safe shed into this record's work_units. Any
  # non-zero count fails the whole run.
  if ! awk '
    function field(line, name,    rest) {
      rest = line
      if (!sub(".*\"" name "\": \"?", "", rest)) return ""
      sub("\"?[,}].*", "", rest)
      return rest
    }
    /"server\/pressure_black_nonshed"/ {
      seen = 1
      if (field($0, "work_units") + 0 != 0) bad = 1
    }
    END {
      if (!seen) { print "no black-tier record in report" > "/dev/stderr"
                   exit 1 }
      if (bad) { print "black tier answered substantive work instead " \
                       "of shedding" > "/dev/stderr"
                 exit 1 }
    }
  ' "$server_out"; then
    echo "run_benches.sh: black-pressure-tier shed contract violated" >&2
    exit 1
  fi
fi

if [ -f "$tmpdir/bench_vm.jsonl" ]; then
  write_array "$vm_out" "$tmpdir/bench_vm.jsonl"
  echo "wrote $vm_out ($(grep -c '"bench"' "$vm_out") records)"
  if ! vm_speedup_table "$vm_out" enforce; then
    echo "run_benches.sh: VM E9 grid regressed below the tree engine" >&2
    exit 1
  fi
fi

if [ -f "$tmpdir/bench_graph_scale.jsonl" ]; then
  write_array "$graph_out" "$tmpdir/bench_graph_scale.jsonl"
  echo "wrote $graph_out ($(grep -c '"bench"' "$graph_out") records)"
  if ! graph_load_table "$graph_out" enforce; then
    echo "run_benches.sh: .fog mmap load floor violated" >&2
    exit 1
  fi
fi
