#!/bin/sh
# Runs every bench_* binary with --json and aggregates the per-binary
# JSONL records into one JSON array.
#
# Usage: tools/run_benches.sh [build_dir] [output.json]
#   build_dir   directory containing the bench binaries (default: build)
#   output.json aggregated report (default: BENCH_parallel.json in the
#               repo root)
#
# Binaries that fail (a VIOLATION self-check, a missing build) are
# reported on stderr and skipped; the aggregate contains whatever the
# successful runs produced. Human-readable tables still go to stdout.

set -u

repo_root=$(dirname "$0")/..
build_dir=${1:-"$repo_root/build"}
out=${2:-"$repo_root/BENCH_parallel.json"}

if [ ! -d "$build_dir" ]; then
  echo "run_benches.sh: build dir '$build_dir' not found" >&2
  exit 1
fi

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

failures=0
ran=0
for bench_path in "$build_dir"/bench/bench_*; do
  [ -f "$bench_path" ] && [ -x "$bench_path" ] || continue
  bench=$(basename "$bench_path")
  echo "=== $bench ==="
  if "$bench_path" --json "$tmpdir/$bench.jsonl"; then
    ran=$((ran + 1))
  else
    echo "run_benches.sh: $bench failed, skipping its records" >&2
    rm -f "$tmpdir/$bench.jsonl"
    failures=$((failures + 1))
  fi
done

if [ "$ran" -eq 0 ]; then
  echo "run_benches.sh: no bench binaries found under $build_dir/bench" >&2
  exit 1
fi

# JSONL -> one JSON array. Pure shell: join all record lines with commas.
{
  printf '[\n'
  first=1
  for jsonl in "$tmpdir"/*.jsonl; do
    [ -f "$jsonl" ] || continue
    while IFS= read -r line; do
      [ -n "$line" ] || continue
      if [ "$first" -eq 1 ]; then first=0; else printf ',\n'; fi
      printf '  %s' "$line"
    done < "$jsonl"
  done
  printf '\n]\n'
} > "$out"

echo "wrote $out ($ran benches, $failures failures)"
[ "$failures" -eq 0 ]
