// Theorem 1 in action: deciding G ⊨ φ using ONLY a learning oracle.
//
// The Lemma 7 reduction asks the (L,Q)-FO-ERM oracle to separate pairs of
// vertices, prunes the answers Ramsey-style down to a set of
// type-representatives, recolours the graph to eliminate the outermost
// quantifier, and recurses. This demo runs the reduction side by side with
// the direct model checker and reports the oracle traffic — the empirical
// face of "learning is at least as hard as model checking".
//
//   $ ./hardness_demo

#include <cstdio>

#include "fo/parser.h"
#include "graph/generators.h"
#include "learn/hardness.h"
#include "mc/evaluator.h"
#include "util/rng.h"
#include "util/table.h"

using namespace folearn;

int main() {
  Rng rng(64);
  Graph graph = MakeRandomTree(10, rng);
  AddRandomColors(graph, {"Red"}, 0.4, rng);
  std::printf("background    : random tree, %d vertices, Red ~ 40%%\n\n",
              graph.order());

  const char* sentences[] = {
      "exists x. Red(x)",
      "forall x. Red(x)",
      "exists x. (Red(x) & exists y. (E(x, y) & !Red(y)))",
      "exists x. forall y. (E(x, y) -> Red(y))",
      "forall x. exists y. E(x, y)",
  };

  Table table({"sentence", "direct", "via ERM oracle", "oracle calls",
               "max |T|", "recursion"});
  for (const char* text : sentences) {
    FormulaRef sentence = MustParseFormula(text);
    bool direct = EvaluateSentence(graph, sentence);
    TypeErmOracle oracle;
    HardnessStats stats;
    bool reduced = ModelCheckViaErm(graph, sentence, oracle, {}, &stats);
    table.AddRow({text, direct ? "true" : "false",
                  reduced ? "true" : "false",
                  std::to_string(stats.oracle_calls),
                  std::to_string(stats.max_representatives),
                  std::to_string(stats.recursion_nodes)});
    if (direct != reduced) {
      std::printf("MISMATCH on %s\n", text);
      return 1;
    }
  }
  table.Print();
  std::printf(
      "\nEvery answer agrees with direct model checking. |T| collapses to "
      "the number of\nfirst-order types — the Ramsey pruning at work.\n");
  return 0;
}
