// FO+C in action (the extension named in the paper's conclusion): learn
// degree-threshold concepts that plain FO cannot express at low quantifier
// rank. "x has at least t neighbours" needs rank t in plain FO (t
// pairwise-distinct witnesses) but is a rank-1 counting concept — and the
// counting learner exploits exactly that.
//
//   $ ./degree_concepts

#include <cstdio>

#include "fo/printer.h"
#include "graph/generators.h"
#include "learn/counting_erm.h"
#include "learn/erm.h"
#include "util/rng.h"
#include "util/table.h"

using namespace folearn;

int main() {
  Rng rng(1337);
  Graph g = MakePreferentialAttachment(120, 1, rng);
  std::printf("network: preferential attachment, %d vertices, max degree "
              "%d\n\n", g.order(), g.MaxDegree());

  Table table({"target", "FO q=1 err", "FO q=2 err", "FO+C q=1 cap=t err",
               "counting types"});
  for (int threshold : {2, 3, 4}) {
    TrainingSet examples;
    for (Vertex v = 0; v < g.order(); ++v) {
      examples.push_back({{v}, g.Degree(v) >= threshold});
    }
    ErmResult plain_q1 = TypeMajorityErm(g, examples, {}, {1, 1});
    ErmResult plain_q2 = TypeMajorityErm(g, examples, {}, {2, 1});
    CountingErmOptions options;
    options.rank = 1;
    options.cap = threshold;
    options.radius = 1;
    CountingErmResult counting =
        CountingTypeMajorityErm(g, examples, {}, options);
    table.AddRow({"deg >= " + std::to_string(threshold),
                  FormatDouble(plain_q1.training_error, 3),
                  FormatDouble(plain_q2.training_error, 3),
                  FormatDouble(counting.training_error, 3),
                  std::to_string(counting.distinct_types_seen)});
  }
  table.Print();

  // Show the learned FO+C formula for the deg ≥ 2 concept.
  TrainingSet examples;
  for (Vertex v = 0; v < g.order(); ++v) {
    examples.push_back({{v}, g.Degree(v) >= 2});
  }
  CountingErmOptions options;
  options.rank = 1;
  options.cap = 2;
  options.radius = 1;
  CountingErmResult result = CountingTypeMajorityErm(g, examples, {},
                                                     options);
  Hypothesis h = result.hypothesis.ToExplicit();
  std::string rendered = ToString(h.formula);
  if (rendered.size() > 300) rendered = rendered.substr(0, 300) + " …";
  std::printf("\nlearned FO+C hypothesis for deg>=2 (%s):\n  %s\n",
              DescribeFormula(h.formula).c_str(), rendered.c_str());
  std::printf("\nFO+C reaches zero error at rank 1 where plain FO needs "
              "deeper quantification —\nthe expressiveness gap the paper's "
              "conclusion points to.\n");
  return result.training_error == 0.0 ? 0 : 1;
}
