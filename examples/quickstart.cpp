// Quickstart: learn a first-order query from labelled examples.
//
// We build a coloured graph, label all vertices by a hidden rank-1 query,
// and ask the library's ERM learner to recover a hypothesis. The learner
// returns both the machine form (a set of accepted local types) and an
// explicit first-order formula.
//
//   $ ./quickstart

#include <cstdio>

#include "fo/parser.h"
#include "fo/printer.h"
#include "graph/generators.h"
#include "learn/erm.h"
#include "util/rng.h"

using namespace folearn;

int main() {
  // 1. The background structure: a random tree with a "Red" colour.
  Rng rng(2022);
  Graph graph = MakeRandomTree(60, rng);
  AddRandomColors(graph, {"Red"}, 0.3, rng);

  // 2. The hidden target query: "x has a red neighbour".
  FormulaRef target = MustParseFormula("exists z. (E(x1, z) & Red(z))");
  std::printf("hidden target : %s\n", ToString(target).c_str());

  // 3. Training data: every vertex, labelled by the target.
  TrainingSet examples = LabelByQuery(graph, target, QueryVars(1),
                                      AllTuples(graph.order(), 1));
  auto [positives, negatives] = CountLabels(examples);
  std::printf("examples      : %zu (%lld positive / %lld negative)\n",
              examples.size(), static_cast<long long>(positives),
              static_cast<long long>(negatives));

  // 4. Learn: empirical risk minimisation over rank-1 hypotheses.
  ErmOptions options;
  options.rank = 1;    // quantifier-rank budget q
  options.radius = 2;  // locality radius r
  ErmResult result = TypeMajorityErm(graph, examples, {}, options);
  std::printf("training error: %.4f over %lld distinct local types\n",
              result.training_error,
              static_cast<long long>(result.distinct_types_seen));

  // 5. Materialise the hypothesis as an explicit FO formula.
  Hypothesis hypothesis = result.hypothesis.ToExplicit();
  std::printf("hypothesis    : %s\n",
              DescribeFormula(hypothesis.formula).c_str());
  std::string rendered = ToString(hypothesis.formula);
  if (rendered.size() > 400) rendered = rendered.substr(0, 400) + " …";
  std::printf("formula       : %s\n", rendered.c_str());

  // 6. Sanity: the explicit formula classifies the training set perfectly.
  double error = TrainingError(graph, hypothesis, examples);
  std::printf("re-evaluated  : %.4f training error\n", error);
  return error == 0.0 ? 0 : 1;
}
