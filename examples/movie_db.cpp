// Learning over a relational database: the paper's setting is "learning
// first-order queries over a relational database instance"; this example
// builds a synthetic movie database, encodes it as a coloured graph
// (db/encoding.h), and learns the concept "x directed a movie" purely from
// labelled examples — then compares the learned classifier to the intended
// relational query.
//
//   $ ./movie_db

#include <cstdio>

#include "db/database.h"
#include "db/encoding.h"
#include "fo/printer.h"
#include "learn/erm.h"
#include "mc/evaluator.h"
#include "util/rng.h"

using namespace folearn;

namespace {

// A random movie database: people 0..people−1, movies people..people+movies−1.
Database MakeRandomMovieDb(int people, int movies, Rng& rng) {
  Schema schema;
  schema.AddRelation("Person", 1);
  schema.AddRelation("Movie", 1);
  schema.AddRelation("Directed", 2);
  schema.AddRelation("ActedIn", 2);
  Database db(schema, people + movies);
  for (int p = 0; p < people; ++p) db.AddTuple("Person", {p});
  for (int m = 0; m < movies; ++m) db.AddTuple("Movie", {people + m});
  for (int m = 0; m < movies; ++m) {
    // Every movie has one director and 2-4 actors.
    int director = static_cast<int>(rng.UniformIndex(people));
    db.AddTuple("Directed", {director, people + m});
    int cast = 2 + static_cast<int>(rng.UniformIndex(3));
    for (int i = 0; i < cast; ++i) {
      db.AddTuple("ActedIn",
                  {static_cast<int>(rng.UniformIndex(people)), people + m});
    }
  }
  return db;
}

}  // namespace

int main() {
  Rng rng(404);
  const int people = 40;
  const int movies = 30;
  Database db = MakeRandomMovieDb(people, movies, rng);
  EncodedDatabase encoded = EncodeDatabase(db);
  std::printf("database      : %d elements, %lld tuples → graph with %d "
              "vertices / %lld edges\n",
              db.domain_size(), static_cast<long long>(db.TotalTuples()),
              encoded.graph.order(),
              static_cast<long long>(encoded.graph.EdgeCount()));

  // The intended query, stated relationally and translated to the graph:
  // director(x) ≡ ∃m (Movie(m) ∧ Directed(x, m)).
  FormulaRef intended = ExistsElem(
      "m", Formula::And(RelationAtom("Movie", {"m"}),
                        RelationAtom("Directed", {"x1", "m"})));
  std::printf("intended query: %s\n", DescribeFormula(intended).c_str());

  // Labelled examples over PEOPLE only (realistic: we label known entities).
  TrainingSet examples;
  for (int p = 0; p < people; ++p) {
    Vertex v = encoded.VertexOf(p);
    std::string vars[] = {"x1"};
    Vertex tuple[] = {v};
    bool label = EvaluateQuery(encoded.graph, intended, vars, tuple);
    examples.push_back({{v}, label});
  }
  auto [positives, negatives] = CountLabels(examples);
  std::printf("examples      : %zu (%lld directors, %lld non-directors)\n",
              examples.size(), static_cast<long long>(positives),
              static_cast<long long>(negatives));

  // Learn at rank 2 (one hop to the tuple vertex, one to the position).
  ErmOptions options;
  options.rank = 2;
  options.radius = 2;  // tuple gadget fits in a radius-2 ball
  ErmResult result = TypeMajorityErm(encoded.graph, examples, {}, options);
  std::printf("learned       : training error %.4f, %lld local types\n",
              result.training_error,
              static_cast<long long>(result.distinct_types_seen));

  // Compare learned classifier vs intended query on every element.
  int agreements = 0;
  for (int e = 0; e < db.domain_size(); ++e) {
    Vertex v = encoded.VertexOf(e);
    std::string vars[] = {"x1"};
    Vertex tuple[] = {v};
    bool intended_label = EvaluateQuery(encoded.graph, intended, vars, tuple);
    Vertex htuple[] = {v};
    bool learned_label = result.hypothesis.Classify(encoded.graph, htuple);
    if (intended_label == learned_label) ++agreements;
  }
  std::printf("agreement     : %d / %d elements (including unlabelled "
              "movie entities)\n",
              agreements, db.domain_size());
  return result.training_error == 0.0 ? 0 : 1;
}
