// Social-network moderation: learn "x is within distance 1 of a flagged
// account" — a concept that NEEDS a hypothesis parameter when flags are not
// part of the vocabulary (the paper's h_{φ,w̄}: the flagged hub becomes w̄).
//
// The scenario: a synthetic follower network with a hidden influencer whose
// neighbourhood was moderated; the platform wants a first-order rule
// explaining the moderation decisions. We compare the parameter-free
// learner, the brute-force parameter search (Proposition 11), and the
// nowhere-dense learner (Theorem 13), and PAC-evaluate the winner.
//
//   $ ./social_network

#include <cstdio>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "learn/erm.h"
#include "learn/nd_learner.h"
#include "learn/pac.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace folearn;

int main() {
  Rng rng(7);
  // A sparse follower network (bounded-degree keeps it nowhere dense).
  const int members = 300;
  Graph network = MakeBoundedDegree(members, 6, 500, rng);
  AddRandomColors(network, {"Verified"}, 0.15, rng);

  // Hidden moderation source: the highest-degree account.
  Vertex influencer = 0;
  for (Vertex v = 0; v < network.order(); ++v) {
    if (network.Degree(v) > network.Degree(influencer)) influencer = v;
  }
  Vertex source[] = {influencer};
  std::vector<int> dist = BfsDistances(network, source);
  std::printf("network       : %d members, %lld edges, influencer degree %d\n",
              network.order(),
              static_cast<long long>(network.EdgeCount()),
              network.Degree(influencer));

  // Training set: moderated ⇔ within distance 1 of the influencer.
  TrainingSet examples;
  for (Vertex v = 0; v < network.order(); ++v) {
    bool moderated = dist[v] != kUnreachable && dist[v] <= 1;
    examples.push_back({{v}, moderated});
  }

  ErmOptions erm_options;
  erm_options.rank = 1;
  erm_options.radius = 1;

  // Parameter-free ERM cannot explain the decisions.
  ErmResult no_params = TypeMajorityErm(network, examples, {}, erm_options);
  std::printf("ℓ = 0 ERM     : training error %.4f\n",
              no_params.training_error);

  // Brute force over all w̄ ∈ V (Proposition 11).
  Stopwatch brute_watch;
  ErmResult brute = BruteForceErm(network, examples, 1, erm_options);
  std::printf("brute force   : training error %.4f (w̄ = %d, %.1f ms, "
              "%lld candidates)\n",
              brute.training_error, brute.hypothesis.parameters[0],
              brute_watch.ElapsedMillis(),
              static_cast<long long>(brute.parameter_tuples_tried));

  // The Theorem 13 learner finds the influencer through conflict analysis
  // and the splitter game instead of scanning all n parameters.
  NdLearnerOptions nd_options;
  nd_options.rank = 1;
  nd_options.radius = 1;
  nd_options.epsilon = 0.1;
  auto splitter = MakeGreedyDegreeSplitter();
  nd_options.splitter = splitter.get();
  Stopwatch nd_watch;
  NdLearnerResult nd = LearnNowhereDense(network, examples, nd_options);
  std::printf("Theorem 13    : training error %.4f (params = [",
              nd.erm.training_error);
  for (size_t i = 0; i < nd.parameters.size(); ++i) {
    std::printf("%s%d", i ? ", " : "", nd.parameters[i]);
  }
  std::printf("], %.1f ms, %lld candidates)\n", nd_watch.ElapsedMillis(),
              static_cast<long long>(nd.candidates_evaluated));
  for (const NdStepStats& step : nd.steps) {
    std::printf("  step %d: |G|=%d, examples=%d, conflict classes=%d, "
                "critical=%d, |X|=%d, branches=%d\n",
                step.step, step.graph_order, step.examples, step.conflicts,
                step.critical, step.x_size, step.branches);
  }

  // PAC evaluation of the learned rule on fresh samples.
  auto target = [&](std::span<const Vertex> tuple) {
    return dist[tuple[0]] != kUnreachable && dist[tuple[0]] <= 1;
  };
  Rng eval_rng(99);
  int wrong = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    Vertex v = static_cast<Vertex>(eval_rng.UniformIndex(network.order()));
    Vertex tuple[] = {v};
    if (nd.erm.hypothesis.Classify(network, tuple) != target(tuple)) ++wrong;
  }
  std::printf("generalisation: %.4f error on %d fresh samples\n",
              static_cast<double>(wrong) / trials, trials);
  return nd.erm.training_error <= brute.training_error + 0.1 ? 0 : 1;
}
