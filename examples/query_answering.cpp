// Query answering over an encoded database: the FO-MC substrate used the
// way a database system would — compute the FULL answer relation of a
// query with the bottom-up algebraic evaluator, compare against per-tuple
// probing, and then close the learning loop: learn the query back from its
// own answer set and verify the learned model answers identically.
//
//   $ ./query_answering

#include <cstdio>
#include <set>

#include "db/database.h"
#include "db/encoding.h"
#include "fo/printer.h"
#include "learn/erm.h"
#include "mc/bottom_up.h"
#include "mc/evaluator.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace folearn;

int main() {
  Rng rng(808);
  // A small social database: Follows(a, b), Verified(x).
  Schema schema;
  schema.AddRelation("Follows", 2);
  schema.AddRelation("Verified", 1);
  const int people = 60;
  Database db(schema, people);
  for (int i = 0; i < people; i += 5) db.AddTuple("Verified", {i});
  for (int i = 0; i < 150; ++i) {
    int a = static_cast<int>(rng.UniformIndex(people));
    int b = static_cast<int>(rng.UniformIndex(people));
    if (a != b) db.AddTuple("Follows", {a, b});
  }
  EncodedDatabase encoded = EncodeDatabase(db);
  std::printf("database      : %d people, %lld tuples → graph n=%d m=%lld\n",
              people, static_cast<long long>(db.TotalTuples()),
              encoded.graph.order(),
              static_cast<long long>(encoded.graph.EdgeCount()));

  // Query: "x1 follows a verified account".
  FormulaRef query = ExistsElem(
      "v", Formula::And(RelationAtom("Verified", {"v"}),
                        RelationAtom("Follows", {"x1", "v"})));
  std::printf("query         : %s\n", DescribeFormula(query).c_str());

  // Full answer set via the bottom-up evaluator.
  Stopwatch bottom_up_watch;
  Relation relation = EvaluateBottomUp(encoded.graph, query);
  double bottom_up_ms = bottom_up_watch.ElapsedMillis();
  std::set<Vertex> answers;
  for (const auto& row : relation.rows) answers.insert(row[0]);

  // Cross-check with per-element probing via the recursive evaluator.
  Stopwatch probe_watch;
  std::string vars[] = {"x1"};
  int probe_answers = 0;
  for (int e = 0; e < people; ++e) {
    Vertex tuple[] = {encoded.VertexOf(e)};
    if (EvaluateQuery(encoded.graph, query, vars, tuple)) {
      ++probe_answers;
      if (answers.count(encoded.VertexOf(e)) == 0) {
        std::printf("MISMATCH at element %d\n", e);
        return 1;
      }
    }
  }
  double probe_ms = probe_watch.ElapsedMillis();
  std::printf("answers       : %d of %d people (bottom-up %.1f ms, "
              "probing %.1f ms)\n",
              probe_answers, people, bottom_up_ms, probe_ms);

  // Close the loop on a locally-definable query: learn "x follows someone"
  // back from its own answer set. (The verified-follow query above reaches
  // graph distance 6 in the encoding — answerable, but beyond the small
  // type radii that keep learning cheap; the locality budget is a real
  // modelling decision, not a free parameter.)
  FormulaRef local_query = ExistsElem("b", RelationAtom("Follows",
                                                        {"x1", "b"}));
  std::vector<std::vector<Vertex>> follow_answers =
      AnswerQuery(encoded.graph, local_query, {"x1"});
  std::set<Vertex> follows;
  for (const auto& row : follow_answers) follows.insert(row[0]);
  TrainingSet examples;
  for (int e = 0; e < people; ++e) {
    Vertex v = encoded.VertexOf(e);
    examples.push_back({{v}, follows.count(v) > 0});
  }
  ErmResult learned = TypeMajorityErm(encoded.graph, examples, {}, {2, 2});
  std::printf("learned       : 'follows someone' with training error %.4f "
              "(%lld local types)\n",
              learned.training_error,
              static_cast<long long>(learned.distinct_types_seen));
  int agreements = 0;
  for (int e = 0; e < people; ++e) {
    Vertex tuple[] = {encoded.VertexOf(e)};
    bool learned_label = learned.hypothesis.Classify(encoded.graph, tuple);
    if (learned_label == (follows.count(encoded.VertexOf(e)) > 0)) {
      ++agreements;
    }
  }
  std::printf("agreement     : %d / %d — the learned model answers the "
              "query it was trained on\n",
              agreements, people);
  return learned.training_error == 0.0 ? 0 : 1;
}
