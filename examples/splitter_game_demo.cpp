// The splitter game in action (paper §2, Fact 4): plays the (r, s)-game on
// several graph families and strategies, printing the rounds Splitter needs.
// Nowhere dense families (paths, trees, grids) stay flat in n; the clique
// control grows linearly — the game *is* the dividing line the paper's
// Theorem 2 stands on.
//
//   $ ./splitter_game_demo

#include <cstdio>

#include "graph/generators.h"
#include "nd/splitter_game.h"
#include "util/rng.h"
#include "util/table.h"

using namespace folearn;

int main() {
  Rng rng(31);
  const int radius = 2;
  const int max_rounds = 40;

  auto tree_splitter = MakeTreeSplitter();
  auto degree_splitter = MakeGreedyDegreeSplitter();
  auto connector = MakeGreedyBallConnector();
  Rng connector_rng(17);
  auto random_connector = MakeRandomConnector(connector_rng);
  std::vector<ConnectorStrategy*> connectors = {connector.get(),
                                                random_connector.get()};

  struct Family {
    const char* name;
    Graph graph;
    SplitterStrategy* splitter;
  };
  std::vector<Family> families;
  families.push_back({"path n=100", MakePath(100), tree_splitter.get()});
  families.push_back({"path n=400", MakePath(400), tree_splitter.get()});
  families.push_back(
      {"random tree n=100", MakeRandomTree(100, rng), tree_splitter.get()});
  families.push_back(
      {"random tree n=400", MakeRandomTree(400, rng), tree_splitter.get()});
  families.push_back({"caterpillar 50×3", MakeCaterpillar(50, 3),
                      tree_splitter.get()});
  families.push_back({"grid 10×10", MakeGrid(10, 10), degree_splitter.get()});
  families.push_back({"grid 20×20", MakeGrid(20, 20), degree_splitter.get()});
  families.push_back({"bounded-deg n=200",
                      MakeBoundedDegree(200, 4, 300, rng),
                      degree_splitter.get()});
  families.push_back({"clique n=8", MakeComplete(8), degree_splitter.get()});
  families.push_back({"clique n=16", MakeComplete(16),
                      degree_splitter.get()});

  std::printf("(r = %d)-splitter game, worst connector of %zu\n\n", radius,
              connectors.size());
  Table table({"family", "order", "strategy", "rounds"});
  for (Family& family : families) {
    int rounds = MeasureSplitterRounds(family.graph, radius, max_rounds,
                                       *family.splitter, connectors);
    table.AddRow({family.name, std::to_string(family.graph.order()),
                  family.splitter->name(),
                  rounds > max_rounds ? ">" + std::to_string(max_rounds)
                                      : std::to_string(rounds)});
  }
  table.Print();
  std::printf("\nNowhere dense families finish in O(1) rounds; cliques need "
              "n rounds (one vertex per round).\n");
  return 0;
}
