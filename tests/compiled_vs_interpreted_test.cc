// Differential testing of the plan-based evaluation engines — the
// compiled tree walker (mc/compiler.h, mc/compiled_eval.h) and the
// register bytecode VM (mc/bytecode.h, mc/vm.h) — against the recursive
// interpreter they replace on the hot paths. The contract under test: for
// every formula, graph, and tuple, all three engines return identical
// verdicts, identical EvalStats work counts, and — under a governor —
// identical cut points (status, work_used, checkpoints_passed), including
// trips injected at every single checkpoint of a run. The ERM grid must
// likewise be bit-for-bit reproducible across eval engines and thread
// counts.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fo/enumerate.h"
#include "fo/parser.h"
#include "fo/printer.h"
#include "graph/generators.h"
#include "learn/dataset.h"
#include "learn/erm.h"
#include "learn/model_io.h"
#include "mc/bytecode.h"
#include "mc/compiled_eval.h"
#include "mc/compiler.h"
#include "mc/evaluator.h"
#include "mc/vm.h"
#include "test_helpers.h"
#include "util/governor.h"
#include "util/rng.h"

namespace folearn {
namespace {

EvalOptions Interpreted() {
  EvalOptions options;
  options.force_interpreter = true;
  return options;
}

EvalOptions WithEngine(EvalEngine engine) {
  EvalOptions options;
  options.engine = engine;
  return options;
}

// The two plan-based engines, each differentialled against the
// interpreter below.
constexpr EvalEngine kPlanEngines[] = {EvalEngine::kCompiled,
                                       EvalEngine::kVm};

// Runs one query through all three engines and checks verdict + work
// counts. Each plan engine is exercised twice: once with a stats sink
// (the counting lane, which must mirror the interpreter's loop structure
// exactly) and once bare (the fast lane with guard specialisation,
// subformula memoization, and — for the VM — superinstructions, which
// must still agree on the verdict).
void ExpectQueryParity(const Graph& graph, const FormulaRef& formula,
                       const std::vector<std::string>& vars,
                       const std::vector<Vertex>& tuple,
                       const std::string& label) {
  EvalStats interpreted_stats;
  bool interpreted = EvaluateQuery(graph, formula, vars, tuple, Interpreted(),
                                   &interpreted_stats);
  // The interpreted path never touches the plan-path timers.
  EXPECT_EQ(interpreted_stats.compile_ms, 0.0) << label;
  EXPECT_EQ(interpreted_stats.eval_ms, 0.0) << label;
  for (EvalEngine engine : kPlanEngines) {
    const std::string tag =
        label + " [" + EvalEngineName(engine) + "]";
    EvalStats stats;
    bool verdict =
        EvaluateQuery(graph, formula, vars, tuple, WithEngine(engine), &stats);
    EXPECT_EQ(verdict, interpreted) << tag;
    EXPECT_EQ(stats.atom_evaluations, interpreted_stats.atom_evaluations)
        << tag;
    EXPECT_EQ(stats.quantifier_branches,
              interpreted_stats.quantifier_branches)
        << tag;
    bool fast_lane =
        EvaluateQuery(graph, formula, vars, tuple, WithEngine(engine));
    EXPECT_EQ(fast_lane, interpreted) << tag << " (fast lane)";
  }
}

TEST(CompiledVsInterpreted, RandomFormulasAcrossFamilies) {
  const std::vector<std::string> vars = QueryVars(2);
  const std::vector<std::string> colors = {"Red", "Blue"};
  const GraphFamily families[] = {GraphFamily::kPath, GraphFamily::kCycle,
                                  GraphFamily::kErdosRenyiSparse,
                                  GraphFamily::kRandomTree};
  Rng rng(2024);
  for (GraphFamily family : families) {
    Graph graph = MakeFamilyGraph(family, 9, rng);
    AddRandomColors(graph, colors, 0.4, rng);
    for (int i = 0; i < 25; ++i) {
      FormulaRef formula = RandomFormula(rng, vars, colors,
                                         /*quantifier_budget=*/2,
                                         /*depth=*/3, /*allow_counting=*/true);
      for (int t = 0; t < 6; ++t) {
        std::vector<Vertex> tuple = {
            static_cast<Vertex>(rng.UniformIndex(graph.order())),
            static_cast<Vertex>(rng.UniformIndex(graph.order()))};
        ExpectQueryParity(graph, formula, vars, tuple,
                          std::string(FamilyName(family)) + " formula " +
                              ToString(formula) + " tuple " +
                              std::to_string(tuple[0]) + "," +
                              std::to_string(tuple[1]));
      }
    }
  }
}

TEST(CompiledVsInterpreted, EnumeratedSliceOnAllTuplesAgrees) {
  Rng rng(7);
  Graph graph = MakeRandomTree(8, rng);
  AddRandomColors(graph, {"Red"}, 0.5, rng);
  EnumerationOptions enumeration;
  enumeration.free_variables = {"x1"};
  enumeration.colors = {"Red"};
  enumeration.max_quantifier_rank = 2;
  enumeration.max_boolean_depth = 1;
  enumeration.max_count = 300;
  std::vector<FormulaRef> formulas = EnumerateFormulas(enumeration);
  ASSERT_GT(formulas.size(), 50u);
  const std::vector<std::string> vars = {"x1"};
  std::vector<std::vector<Vertex>> tuples = AllTuples(graph.order(), 1);
  for (const FormulaRef& formula : formulas) {
    EvalStats interpreted_stats;
    std::vector<bool> interpreted = EvaluateOnTuples(
        graph, formula, vars, tuples, Interpreted(), &interpreted_stats);
    for (EvalEngine engine : kPlanEngines) {
      const std::string tag =
          ToString(formula) + " [" + EvalEngineName(engine) + "]";
      EvalStats stats;
      std::vector<bool> verdicts = EvaluateOnTuples(
          graph, formula, vars, tuples, WithEngine(engine), &stats);
      EXPECT_EQ(verdicts, interpreted) << tag;
      EXPECT_EQ(stats.atom_evaluations, interpreted_stats.atom_evaluations)
          << tag;
      EXPECT_EQ(stats.quantifier_branches,
                interpreted_stats.quantifier_branches)
          << tag;
    }
  }
  // Batched and tuple-at-a-time evaluation agree too, for both engines.
  const FormulaRef spot = formulas[formulas.size() / 2];
  for (EvalEngine engine : kPlanEngines) {
    std::vector<bool> batched =
        EvaluateOnTuples(graph, spot, vars, tuples, WithEngine(engine));
    for (size_t i = 0; i < tuples.size(); ++i) {
      EXPECT_EQ(
          EvaluateQuery(graph, spot, vars, tuples[i], WithEngine(engine)),
          batched[i])
          << ToString(spot) << " tuple " << i << " ["
          << EvalEngineName(engine) << "]";
    }
  }
}

TEST(CompiledVsInterpreted, GuardedShapesSpecialiseAndAgree) {
  Rng rng(41);
  Graph graph = MakeErdosRenyi(11, 0.3, rng);
  AddRandomColors(graph, {"Red"}, 0.5, rng);
  const std::vector<std::string> vars = {"x"};
  // The guard shapes the compiler recognises — the edge guard may sit
  // anywhere in the body's connective list — plus decoys with no
  // specialisable guard (wrong connective or degenerate atom) that must
  // stay unspecialised yet agree.
  struct Shape {
    const char* text;
    bool expect_guarded;
  };
  const Shape shapes[] = {
      {"exists y. (E(x, y) & Red(y))", true},
      {"forall y. (!E(x, y) | Red(y))", true},
      {"exists y. (Red(y) & E(x, y))", true},
      {"forall y. (Red(y) | !E(x, y))", true},
      {"exists y. (Red(y) & !E(x, y))", true},   // colour guard
      {"forall y. (!Red(y) | E(x, y))", true},   // ¬colour guard
      {"exists y. (Red(y) | E(x, y))", false},
      {"forall y. (E(x, y) | Red(y))", false},
      {"exists y. E(y, y)", false},
  };
  for (const Shape& shape : shapes) {
    FormulaRef formula = MustParseFormula(shape.text);
    CompiledFormula plan = CompileFormula(formula, vars);
    if (shape.expect_guarded) {
      EXPECT_GT(plan.guarded_nodes(), 0) << shape.text;
    } else {
      EXPECT_EQ(plan.guarded_nodes(), 0) << shape.text;
    }
    for (Vertex v = 0; v < graph.order(); ++v) {
      ExpectQueryParity(graph, formula, vars, {v},
                        std::string(shape.text) + " @" + std::to_string(v));
    }
  }
  // A maximal same-kind run fuses into one block; parity must survive it.
  // (No edge or colour guard in the inner body — a guardable inner level
  // would break the run in favour of the guarded loop.)
  FormulaRef fused =
      MustParseFormula("exists y. exists z. (Red(y) | Red(z))");
  CompiledFormula fused_plan = CompileFormula(fused, vars);
  EXPECT_GT(fused_plan.fused_levels(), 0) << "no fused quantifier block";
  for (Vertex v = 0; v < graph.order(); ++v) {
    ExpectQueryParity(graph, fused, vars, {v}, "fused @" + std::to_string(v));
  }
}

TEST(CompiledVsInterpreted, ClosedSubformulasMemoiseOncePerGraph) {
  Rng rng(5);
  Graph graph = MakePath(10);
  AddRandomColors(graph, {"Red"}, 0.5, rng);
  // "exists z. Red(z)" is sentence-valued under the outer quantifier: the
  // plan must give it a memo slot and the fast lane must compute it once.
  FormulaRef formula =
      MustParseFormula("forall y. (Red(y) | exists z. Red(z))");
  const std::vector<std::string> vars = {"x"};
  CompiledFormula plan = CompileFormula(formula, vars);
  EXPECT_GT(plan.num_memo_slots(), 0);
  CompiledEvaluator evaluator(plan, graph);
  for (Vertex v = 0; v < graph.order(); ++v) {
    const std::vector<Vertex> tuple = {v};
    bool interpreted =
        EvaluateQuery(graph, formula, vars, tuple, Interpreted());
    EXPECT_EQ(evaluator.Eval(tuple), interpreted) << "memo @" << v;
  }
}

TEST(CompiledVsInterpreted, CountingAndMsoQuantifiersAgree) {
  Rng rng(13);
  Graph graph = MakeCycle(6);
  AddRandomColors(graph, {"Red"}, 0.5, rng);
  const std::vector<std::string> vars = {"x"};
  // Counting quantifiers (threshold reachable and unreachable — the
  // unreachable case exercises the early-abort branch-count parity).
  for (const char* text : {"exists>=2 y. E(x, y)", "exists>=3 y. E(x, y)",
                           "exists>=7 y. Red(y)"}) {
    FormulaRef formula = MustParseFormula(text);
    for (Vertex v = 0; v < graph.order(); ++v) {
      ExpectQueryParity(graph, formula, vars, {v},
                        std::string(text) + " @" + std::to_string(v));
    }
  }
  // MSO set quantifiers enumerate all 2^n masks in the same order.
  FormulaRef mso = Formula::ExistsSet(
      "S", Formula::And(Formula::SetMember("x", "S"),
                        Formula::Exists("y", Formula::And(
                                                 Formula::Edge("x", "y"),
                                                 Formula::Not(Formula::SetMember(
                                                     "y", "S"))))));
  FormulaRef mso_forall = Formula::ForallSet(
      "S", Formula::Or(Formula::SetMember("x", "S"),
                       Formula::Not(Formula::SetMember("x", "S"))));
  for (const FormulaRef& formula : {mso, mso_forall}) {
    for (Vertex v = 0; v < graph.order(); ++v) {
      ExpectQueryParity(graph, formula, vars, {v},
                        ToString(formula) + " @" + std::to_string(v));
    }
  }
}

// Sweeps a fault injector over EVERY checkpoint of a run: at each trip
// point every plan engine must latch the same status as the interpreter
// after the same number of checkpoints and work units — a governed plan
// path may not reorder, batch, or skip a single checkpoint the
// interpreter performs.
void ExpectCutPointParity(const Graph& graph, const FormulaRef& formula,
                          const std::vector<std::string>& vars,
                          const std::vector<Vertex>& tuple) {
  ResourceGovernor baseline;
  EvalOptions interpreted_options = Interpreted();
  interpreted_options.governor = &baseline;
  bool complete_verdict =
      EvaluateQuery(graph, formula, vars, tuple, interpreted_options);
  const int64_t total = baseline.checkpoints_passed();
  for (int64_t trip = 1; trip <= total + 1; ++trip) {
    FaultInjector interpreted_injector(trip);
    ResourceGovernor interpreted_governor(GovernorLimits{}, nullptr,
                                          &interpreted_injector);
    EvalOptions iopts = Interpreted();
    iopts.governor = &interpreted_governor;
    EvalStats istats;
    bool iverdict = EvaluateQuery(graph, formula, vars, tuple, iopts, &istats);
    if (!interpreted_governor.Interrupted()) {
      // Past the last checkpoint the run completes and the verdict binds.
      EXPECT_EQ(iverdict, complete_verdict)
          << ToString(formula) << " trip=" << trip;
    }

    for (EvalEngine engine : kPlanEngines) {
      FaultInjector injector(trip);
      ResourceGovernor governor(GovernorLimits{}, nullptr, &injector);
      EvalOptions copts = WithEngine(engine);
      copts.governor = &governor;
      EvalStats cstats;
      bool cverdict =
          EvaluateQuery(graph, formula, vars, tuple, copts, &cstats);

      const std::string label =
          ToString(formula) + " trip=" + std::to_string(trip) + "/" +
          std::to_string(total) + " [" + EvalEngineName(engine) + "]";
      EXPECT_EQ(cstats.status, istats.status) << label;
      EXPECT_EQ(governor.status(), interpreted_governor.status()) << label;
      EXPECT_EQ(governor.work_used(), interpreted_governor.work_used())
          << label;
      EXPECT_EQ(governor.checkpoints_passed(),
                interpreted_governor.checkpoints_passed())
          << label;
      EXPECT_EQ(cstats.quantifier_branches, istats.quantifier_branches)
          << label;
      EXPECT_EQ(cstats.atom_evaluations, istats.atom_evaluations) << label;
      if (!interpreted_governor.Interrupted()) {
        EXPECT_EQ(cverdict, complete_verdict) << label;
      }
    }
  }
}

TEST(CompiledVsInterpreted, GovernorCutPointsMatchAtEveryCheckpoint) {
  Rng rng(99);
  Graph graph = MakeErdosRenyi(8, 0.35, rng);
  AddRandomColors(graph, {"Red"}, 0.5, rng);
  const std::vector<std::string> vars = {"x"};
  for (const char* text : {
           "forall y. exists z. E(y, z)",
           "exists y. (E(x, y) & Red(y))",     // guarded counting lane
           "forall y. (!E(x, y) | Red(y))",    // guarded counting lane
           "exists y. exists z. (Red(y) & E(y, z))",  // fused block
           "exists>=2 y. E(x, y)",
       }) {
    ExpectCutPointParity(graph, MustParseFormula(text), vars, {0});
  }
  // MSO cut points: one checkpoint per subset mask.
  Graph small = MakeCycle(4);
  ExpectCutPointParity(
      small,
      Formula::ExistsSet("S", Formula::Forall(
                                  "y", Formula::SetMember("y", "S"))),
      vars, {0});
}

TEST(CompiledVsInterpreted, WorkBudgetsTripIdentically) {
  Rng rng(17);
  Graph graph = MakeErdosRenyi(9, 0.3, rng);
  FormulaRef formula = MustParseFormula("forall y. exists z. E(y, z)");
  for (int64_t budget : {int64_t{1}, int64_t{3}, int64_t{10}, int64_t{64}}) {
    ResourceGovernor interpreted_governor(
        GovernorLimits{kNoLimit, budget});
    EvalOptions iopts = Interpreted();
    iopts.governor = &interpreted_governor;
    EvaluateSentence(graph, formula, iopts);
    for (EvalEngine engine : kPlanEngines) {
      ResourceGovernor governor(GovernorLimits{kNoLimit, budget});
      EvalOptions copts = WithEngine(engine);
      copts.governor = &governor;
      EvaluateSentence(graph, formula, copts);
      const std::string label = "budget=" + std::to_string(budget) + " [" +
                                EvalEngineName(engine) + "]";
      EXPECT_EQ(governor.status(), interpreted_governor.status()) << label;
      EXPECT_EQ(governor.work_used(), interpreted_governor.work_used())
          << label;
    }
  }
}

// The E9 grid: training error, formulas tried, run status, and serialised
// model bytes must be identical across {interpreted, compiled, vm} ×
// {1, 2, 8} threads, with and without an injected governor trip mid-grid.
TEST(CompiledVsInterpreted, EnumerationErmGridIsModeAndThreadInvariant) {
  Rng rng(321);
  Graph graph = MakeRandomTree(12, rng);
  AddRandomColors(graph, {"Red"}, 0.4, rng);
  std::vector<std::vector<Vertex>> tuples =
      SampleTuples(graph.order(), 1, 2 * graph.order(), rng);
  TrainingSet examples = LabelByQuery(
      graph, MustParseFormula("exists z. (E(x1, z) & Red(z))"), QueryVars(1),
      tuples);
  FlipLabels(examples, 0.3, rng);
  EnumerationOptions enumeration;
  enumeration.colors = {"Red"};
  enumeration.max_quantifier_rank = 1;
  enumeration.max_boolean_depth = 1;
  enumeration.max_count = 400;

  for (int64_t trip : {int64_t{0}, int64_t{57}}) {  // 0 = no fault
    EnumerationErmResult base;
    bool first = true;
    for (int threads : {1, 2, 8}) {
      for (EvalEngine engine : {EvalEngine::kInterpreted,
                                EvalEngine::kCompiled, EvalEngine::kVm}) {
        FaultInjector injector(trip > 0 ? trip : 1);
        ResourceGovernor governor(GovernorLimits{}, nullptr,
                                  trip > 0 ? &injector : nullptr);
        EvalOptions eval = WithEngine(engine);
        EnumerationErmResult result =
            EnumerationErm(graph, examples, 0, enumeration,
                           trip > 0 ? &governor : nullptr, threads, eval);
        const std::string label =
            "trip=" + std::to_string(trip) +
            " threads=" + std::to_string(threads) + " " +
            EvalEngineName(engine);
        if (trip > 0) {
          EXPECT_TRUE(IsInterrupted(result.status)) << label;
        } else {
          EXPECT_EQ(result.status, RunStatus::kComplete) << label;
        }
        if (first) {
          base = result;
          first = false;
          continue;
        }
        EXPECT_EQ(result.training_error, base.training_error) << label;
        EXPECT_EQ(result.formulas_tried, base.formulas_tried) << label;
        EXPECT_EQ(result.status, base.status) << label;
        ASSERT_EQ(result.hypothesis.formula != nullptr,
                  base.hypothesis.formula != nullptr)
            << label;
        if (base.hypothesis.formula != nullptr) {
          EXPECT_EQ(HypothesisToText(result.hypothesis),
                    HypothesisToText(base.hypothesis))
              << label;
        }
      }
    }
  }
}

TEST(CompiledVsInterpreted, TrainingErrorMatchesAcrossModes) {
  Rng rng(55);
  Graph graph = MakeRandomTree(15, rng);
  AddRandomColors(graph, {"Red"}, 0.4, rng);
  std::vector<std::vector<Vertex>> tuples =
      SampleTuples(graph.order(), 1, 40, rng);
  TrainingSet examples = LabelByQuery(
      graph, MustParseFormula("exists z. E(x1, z)"), QueryVars(1), tuples);
  FlipLabels(examples, 0.25, rng);
  Hypothesis hypothesis;
  hypothesis.query_vars = QueryVars(1);
  hypothesis.param_vars = {"y1"};
  hypothesis.parameters = {Vertex{2}};
  hypothesis.formula = MustParseFormula("E(x1, y1) | Red(x1)");
  const double reference =
      TrainingError(graph, hypothesis, examples, Interpreted());
  for (EvalEngine engine : kPlanEngines) {
    EvalOptions options = WithEngine(engine);
    EXPECT_EQ(TrainingError(graph, hypothesis, examples, options), reference)
        << EvalEngineName(engine);
    for (const LabeledExample& example : examples) {
      EXPECT_EQ(hypothesis.Classify(graph, example.tuple, options),
                hypothesis.Classify(graph, example.tuple, Interpreted()))
          << EvalEngineName(engine);
    }
  }
}

// VM-specific surfaces: per-opcode dispatch counters, the lower/exec
// timing split, superinstruction coverage, and the whole-evaluator
// fallback for plans the lowerer rejects (MSO set quantifiers).
TEST(CompiledVsInterpreted, VmStatsExposeDispatchCountersAndTimers) {
  Rng rng(23);
  Graph graph = MakeErdosRenyi(10, 0.3, rng);
  AddRandomColors(graph, {"Red"}, 0.5, rng);
  FormulaRef formula =
      MustParseFormula("exists y. (E(x, y) & exists z. (Red(z) & E(y, z)))");
  const std::vector<std::string> vars = {"x"};
  const std::vector<Vertex> tuple = {0};
  EvalStats vm_stats;
  EvaluateQuery(graph, formula, vars, tuple, WithEngine(EvalEngine::kVm),
                &vm_stats);
  ASSERT_EQ(vm_stats.vm_op_dispatches.size(),
            static_cast<size_t>(kNumVmOps));
  int64_t dispatched = 0;
  for (int64_t count : vm_stats.vm_op_dispatches) dispatched += count;
  EXPECT_GT(dispatched, 0);
  EXPECT_GE(vm_stats.lower_ms, 0.0);
  EXPECT_GT(vm_stats.exec_ms, 0.0);
  EXPECT_EQ(vm_stats.exec_ms, vm_stats.eval_ms);
  // The tree engine never populates the VM surfaces.
  EvalStats tree_stats;
  EvaluateQuery(graph, formula, vars, tuple,
                WithEngine(EvalEngine::kCompiled), &tree_stats);
  EXPECT_TRUE(tree_stats.vm_op_dispatches.empty());
  EXPECT_EQ(tree_stats.lower_ms, 0.0);
  EXPECT_EQ(tree_stats.exec_ms, 0.0);
}

TEST(CompiledVsInterpreted, VmLowersSuperinstructionsForGuardedShapes) {
  const std::vector<std::string> vars = {"x"};
  // Neighbour scan with a foldable body, colour-class scan, equality
  // bind, counting loop: each should fuse into a superinstruction.
  for (const char* text :
       {"exists y. (E(x, y) & Red(y))", "exists y. (Red(y) & E(x, y))",
        "exists y. (y = x & Red(y))", "exists>=2 y. E(x, y)"}) {
    CompiledFormula plan = CompileFormula(MustParseFormula(text), vars);
    LoweredPlan lowered = LowerPlan(plan);
    ASSERT_TRUE(lowered.supported) << text;
    EXPECT_GT(lowered.superinstructions, 0) << text;
  }
}

TEST(CompiledVsInterpreted, VmFallsBackOnMsoPlans) {
  Graph graph = MakeCycle(5);
  FormulaRef mso = Formula::ExistsSet(
      "S", Formula::Exists("y", Formula::SetMember("y", "S")));
  CompiledFormula plan = CompileFormula(mso, {});
  LoweredPlan lowered = LowerPlan(plan);
  EXPECT_FALSE(lowered.supported);
  VmEvaluator evaluator(plan, lowered, graph);
  EXPECT_TRUE(evaluator.uses_fallback());
  EXPECT_EQ(evaluator.Eval({}),
            EvaluateSentence(graph, mso, Interpreted()));
}

// PrepareFormulas + the prepared-span EnumerationErm overload must give
// the byte-identical result of the FormulaRef overload on every engine.
TEST(CompiledVsInterpreted, PreparedFormulasMatchUnpreparedGrid) {
  Rng rng(77);
  Graph graph = MakeRandomTree(10, rng);
  AddRandomColors(graph, {"Red"}, 0.4, rng);
  std::vector<std::vector<Vertex>> tuples =
      SampleTuples(graph.order(), 1, graph.order(), rng);
  TrainingSet examples = LabelByQuery(
      graph, MustParseFormula("exists z. E(x1, z)"), QueryVars(1), tuples);
  FlipLabels(examples, 0.3, rng);
  EnumerationOptions enumeration;
  enumeration.colors = {"Red"};
  enumeration.max_quantifier_rank = 1;
  enumeration.max_boolean_depth = 1;
  enumeration.max_count = 150;
  std::vector<FormulaRef> formulas = EnumerateFormulas(enumeration);
  ASSERT_GT(formulas.size(), 20u);
  for (EvalEngine engine : kPlanEngines) {
    EvalOptions eval = WithEngine(engine);
    EnumerationErmResult plain = EnumerationErm(
        graph, examples, 0, std::span<const FormulaRef>(formulas), nullptr,
        /*threads=*/2, eval);
    std::vector<PreparedFormula> prepared =
        PrepareFormulas(formulas, /*k=*/1, /*ell=*/0, engine);
    EnumerationErmResult from_prepared = EnumerationErm(
        graph, examples, 0, std::span<const PreparedFormula>(prepared),
        nullptr, /*threads=*/2, eval);
    const std::string label = EvalEngineName(engine);
    EXPECT_EQ(from_prepared.training_error, plain.training_error) << label;
    EXPECT_EQ(from_prepared.formulas_tried, plain.formulas_tried) << label;
    EXPECT_EQ(HypothesisToText(from_prepared.hypothesis),
              HypothesisToText(plain.hypothesis))
        << label;
  }
}

// The Assignment rework (per-name stacks + last-binding cache) must keep
// the stack semantics and the fatal misuse diagnostics.
TEST(CompiledVsInterpreted, AssignmentStackSemanticsSurviveRework) {
  Assignment assignment;
  assignment.Bind("x", 1);
  assignment.Bind("y", 2);
  assignment.Bind("x", 3);  // shadows
  EXPECT_EQ(assignment.Lookup("x"), std::optional<Vertex>(3));
  assignment.Rebind("x", 4);  // overwrites the innermost binding only
  EXPECT_EQ(assignment.Lookup("x"), std::optional<Vertex>(4));
  assignment.Unbind("x");
  EXPECT_EQ(assignment.Lookup("x"), std::optional<Vertex>(1));
  EXPECT_EQ(assignment.Lookup("y"), std::optional<Vertex>(2));
  assignment.Unbind("x");
  EXPECT_EQ(assignment.Lookup("x"), std::nullopt);
  // Emptied stacks are retained for reuse; binding again works.
  assignment.Bind("x", 7);
  EXPECT_EQ(assignment.Lookup("x"), std::optional<Vertex>(7));
}

TEST(CompiledVsInterpretedDeath, AssignmentMisuseStillDies) {
  Assignment assignment;
  EXPECT_DEATH(assignment.Rebind("ghost", 0),
               "rebinding unbound variable 'ghost'");
  EXPECT_DEATH(assignment.Unbind("ghost"),
               "unbinding unbound variable 'ghost'");
}

TEST(CompiledVsInterpretedDeath, BothEnginesRejectInvalidVertices) {
  Graph graph = MakePath(3);
  FormulaRef formula = MustParseFormula("E(x, y)");
  const std::vector<std::string> vars = {"x", "y"};
  const std::vector<Vertex> bad = {Vertex{0}, Vertex{9}};
  EXPECT_DEATH(EvaluateQuery(graph, formula, vars, bad),
               "variable 'y' bound to invalid vertex 9");
  EXPECT_DEATH(EvaluateQuery(graph, formula, vars, bad, Interpreted()),
               "variable 'y' bound to invalid vertex 9");
}

}  // namespace
}  // namespace folearn
