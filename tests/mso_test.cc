#include <gtest/gtest.h>

#include "fo/mso.h"
#include "fo/normal_form.h"
#include "fo/parser.h"
#include "fo/printer.h"
#include "fo/transform.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "learn/hypothesis.h"
#include "mc/evaluator.h"
#include "util/rng.h"

namespace folearn {
namespace {

TEST(MsoFormula, ConstructionAndAccessors) {
  FormulaRef member = Formula::SetMember("x", "X");
  EXPECT_EQ(member->kind(), FormulaKind::kSetMember);
  EXPECT_EQ(member->var1(), "x");
  EXPECT_EQ(member->set_name(), "X");
  EXPECT_EQ(member->free_variables(), std::vector<std::string>{"x"});
  EXPECT_EQ(member->free_set_variables(), std::vector<std::string>{"X"});
  EXPECT_FALSE(member->IsFirstOrder());

  FormulaRef closed = Formula::ExistsSet("X", member);
  EXPECT_TRUE(closed->free_set_variables().empty());
  EXPECT_EQ(closed->free_variables(), std::vector<std::string>{"x"});
  EXPECT_TRUE(MustParseFormula("E(x, y)")->IsFirstOrder());
}

TEST(MsoFormula, ParserPrinterRoundTrip) {
  const char* inputs[] = {
      "x in X",
      "existsset X. x in X",
      "forallset X. (exists x. x in X) -> forall y. y in X",
      "existsset X. forall u. forall v. !E(u, v) | !(u in X)",
  };
  for (const char* input : inputs) {
    FormulaRef once = MustParseFormula(input);
    FormulaRef twice = MustParseFormula(ToString(once));
    EXPECT_EQ(ToString(once), ToString(twice)) << input;
  }
}

TEST(MsoFormula, SentenceCheckIncludesSetVariables) {
  Graph g = MakePath(3);
  FormulaRef free_set = MustParseFormula("exists x. x in X");
  EXPECT_DEATH(EvaluateSentence(g, free_set), "free set variables");
}

TEST(MsoEvaluator, MembershipWithExplicitBinding) {
  Graph g = MakePath(4);
  FormulaRef f = MustParseFormula("x in X");
  Assignment assignment;
  assignment.Bind("x", 2);
  auto members = std::make_shared<std::vector<bool>>(
      std::vector<bool>{false, false, true, false});
  assignment.BindSet("X", members);
  EXPECT_TRUE(Evaluate(g, f, assignment));
  assignment.Unbind("x");
  assignment.Bind("x", 1);
  EXPECT_FALSE(Evaluate(g, f, assignment));
}

TEST(MsoEvaluator, ConnectivitySentence) {
  FormulaRef connected = MsoConnectivitySentence();
  EXPECT_TRUE(EvaluateSentence(MakePath(6), connected));
  EXPECT_TRUE(EvaluateSentence(MakeCycle(5), connected));
  EXPECT_TRUE(EvaluateSentence(MakeStar(5), connected));
  EXPECT_FALSE(EvaluateSentence(
      DisjointUnion(MakePath(3), MakePath(3)), connected));
  Graph with_isolated = MakePath(4);
  with_isolated.AddVertex();
  EXPECT_FALSE(EvaluateSentence(with_isolated, connected));
}

TEST(MsoEvaluator, BipartiteSentenceIsEvenCycleDetector) {
  FormulaRef bipartite = MsoBipartiteSentence();
  EXPECT_TRUE(EvaluateSentence(MakeCycle(4), bipartite));
  EXPECT_TRUE(EvaluateSentence(MakeCycle(6), bipartite));
  EXPECT_FALSE(EvaluateSentence(MakeCycle(5), bipartite));
  EXPECT_FALSE(EvaluateSentence(MakeCycle(7), bipartite));
  EXPECT_TRUE(EvaluateSentence(MakePath(7), bipartite));
  EXPECT_FALSE(EvaluateSentence(MakeComplete(3), bipartite));
  EXPECT_TRUE(EvaluateSentence(MakeCompleteBipartite(3, 3), bipartite));
}

TEST(MsoEvaluator, SameComponentFormula) {
  Graph g = DisjointUnion(MakePath(4), MakePath(4));
  FormulaRef same = MsoSameComponentFormula("x1", "x2");
  std::string vars[] = {"x1", "x2"};
  Vertex in_first[] = {0, 3};
  Vertex across[] = {0, 5};
  EXPECT_TRUE(EvaluateQuery(g, same, vars, in_first));
  EXPECT_FALSE(EvaluateQuery(g, same, vars, across));
  // Same-component agrees with BFS for all pairs.
  for (Vertex a = 0; a < g.order(); ++a) {
    for (Vertex b = 0; b < g.order(); ++b) {
      Vertex tuple[] = {a, b};
      bool reachable = Distance(g, a, b) != kUnreachable;
      EXPECT_EQ(EvaluateQuery(g, same, vars, tuple), reachable)
          << a << "," << b;
    }
  }
}

TEST(MsoEvaluator, IndependentDominatingSet) {
  FormulaRef ids = MsoIndependentDominatingSetSentence();
  // Every graph without isolated-vertex pathologies has one (greedy
  // maximal independent set is dominating); check a few shapes.
  EXPECT_TRUE(EvaluateSentence(MakeCycle(5), ids));
  EXPECT_TRUE(EvaluateSentence(MakeStar(4), ids));
  EXPECT_TRUE(EvaluateSentence(MakeComplete(4), ids));
}

TEST(MsoEvaluator, TooLargeStructureDies) {
  Graph g = MakePath(23);
  EXPECT_DEATH(EvaluateSentence(g, MsoBipartiteSentence()), "2\\^n");
}

TEST(MsoHypothesis, LearnedStyleMsoClassifierWorks) {
  // An MSO formula used as a hypothesis through the standard machinery:
  // h(x) = "x is in the same component as the parameter hub y1".
  Graph g = DisjointUnion(MakeStar(4), MakePath(5));
  Hypothesis h;
  h.formula = MsoSameComponentFormula("x1", "y1");
  h.query_vars = QueryVars(1);
  h.param_vars = ParamVars(1);
  h.parameters = {0};  // the star's hub
  TrainingSet examples;
  for (Vertex v = 0; v < g.order(); ++v) {
    examples.push_back({{v}, v <= 4});  // star vertices
  }
  EXPECT_EQ(TrainingError(g, h, examples), 0.0);
}

TEST(MsoNormalForms, NnfDualizesSetQuantifiers) {
  FormulaRef f = Formula::Not(MsoBipartiteSentence());
  FormulaRef nnf = ToNegationNormalForm(f);
  EXPECT_TRUE(IsNegationNormalForm(nnf));
  EXPECT_EQ(nnf->kind(), FormulaKind::kForallSet);
  // Semantics preserved.
  EXPECT_EQ(EvaluateSentence(MakeCycle(5), f),
            EvaluateSentence(MakeCycle(5), nnf));
  EXPECT_EQ(EvaluateSentence(MakeCycle(6), f),
            EvaluateSentence(MakeCycle(6), nnf));
}

TEST(MsoTransforms, ElementRenamingPassesThroughSetBinders) {
  FormulaRef f = MsoSameComponentFormula("a", "b");
  FormulaRef renamed = RenameFreeVariables(f, {{"a", "x1"}, {"b", "x2"}});
  Graph g = MakePath(4);
  std::string vars[] = {"x1", "x2"};
  Vertex tuple[] = {0, 3};
  EXPECT_TRUE(EvaluateQuery(g, renamed, vars, tuple));
}

}  // namespace
}  // namespace folearn
