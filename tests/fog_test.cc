#include "graph/fog.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "util/checkpoint.h"
#include "util/rng.h"
#include "util/status.h"

namespace folearn {
namespace {

// The `.fog` binary graph format: text↔binary round trips, the
// memory-mapped loader's sharing semantics, and the corrupt-input matrix
// (truncation, bit flips, version skew, bad checksum). The format is
// checksummed, so — like the checkpoint envelope and unlike the free-text
// parsers — anything but the pristine bytes must be refused with exit
// code 65 semantics, never UB. corrupt_input_test.cc is the model.

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// A zoo of structurally diverse graphs, colours included.
std::vector<Graph> SampleGraphs() {
  std::vector<Graph> graphs;
  graphs.push_back(Graph(0));
  graphs.push_back(Graph(1));
  graphs.push_back(MakePath(17));
  graphs.push_back(MakeGrid(5, 7));
  graphs.push_back(MakeCompleteBipartite(4, 9));
  graphs.push_back(MakeHypercube(5));
  {
    Rng rng(11);
    Graph g = MakeRandomTree(64, rng);
    AddRandomColors(g, {"Red", "Blue", "Green"}, 0.3, rng);
    graphs.push_back(std::move(g));
  }
  {
    Rng rng(13);
    Graph g = MakeErdosRenyi(40, 0.15, rng);
    AddPeriodicColor(g, "Odd", 2, 1);
    AddPeriodicColor(g, "Zero", 40, 0);
    graphs.push_back(std::move(g));
  }
  {
    // Exactly 64 vertices tests the tail-mask boundary of the colour
    // bitset words; 65 tests the first bit of a second word.
    Graph g = MakeCycle(65);
    AddPeriodicColor(g, "Red", 3, 0);
    graphs.push_back(std::move(g));
  }
  for (Graph& g : graphs) g.Finalize();
  return graphs;
}

void ExpectSameGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.order(), b.order());
  ASSERT_EQ(a.EdgeCount(), b.EdgeCount());
  ASSERT_EQ(a.vocabulary().names(), b.vocabulary().names());
  for (Vertex v = 0; v < a.order(); ++v) {
    const std::span<const Vertex> left = a.Neighbors(v);
    const std::span<const Vertex> right = b.Neighbors(v);
    ASSERT_TRUE(std::equal(left.begin(), left.end(), right.begin(),
                           right.end()))
        << "adjacency differs at vertex " << v;
    for (ColorId c = 0; c < a.vocabulary().size(); ++c) {
      ASSERT_EQ(a.HasColor(v, c), b.HasColor(v, c))
          << "colour " << a.vocabulary().Name(c) << " differs at " << v;
    }
  }
}

TEST(FogFormat, RoundTripsEverySampleGraph) {
  const std::string path = TempPath("roundtrip.fog");
  int index = 0;
  for (const Graph& graph : SampleGraphs()) {
    SCOPED_TRACE("sample " + std::to_string(index++));
    ASSERT_TRUE(WriteFogFile(path, graph).ok());
    StatusOr<Graph> loaded = LoadFogFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    EXPECT_TRUE(loaded->finalized());
    ExpectSameGraph(graph, *loaded);
    // The text serialisation is the canonical witness: binary round trip
    // must be invisible to it.
    EXPECT_EQ(ToText(graph), ToText(*loaded));
  }
  std::remove(path.c_str());
}

// Property test: text -> binary -> text is the identity on random
// generator output, across families and colourings.
TEST(FogFormat, TextBinaryTextIsIdentity) {
  Rng rng(29);
  const std::string path = TempPath("property.fog");
  for (int trial = 0; trial < 30; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const int n = 2 + static_cast<int>(rng.UniformIndex(60));
    Graph graph(0);
    switch (trial % 4) {
      case 0: graph = MakeRandomTree(n, rng); break;
      case 1: graph = MakeErdosRenyi(n, 0.2, rng); break;
      case 2: graph = MakeBoundedDegree(n, 3, 2 * n, rng); break;
      default: graph = MakePreferentialAttachment(n, 2, rng); break;
    }
    AddRandomColors(graph, {"Red", "Blue"}, 0.4, rng);
    graph.Finalize();
    const std::string text = ToText(graph);
    ASSERT_TRUE(WriteFogFile(path, graph).ok());
    uint64_t fingerprint = 0;
    StatusOr<Graph> loaded = LoadGraphAuto(path, &fingerprint);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    EXPECT_NE(fingerprint, 0u);
    EXPECT_EQ(text, ToText(*loaded));
    // And back through the text parser for the full cycle.
    StatusOr<Graph> reparsed = ParseGraph(ToText(*loaded));
    ASSERT_TRUE(reparsed.ok());
    ExpectSameGraph(*loaded, *reparsed);
  }
  std::remove(path.c_str());
}

TEST(FogFormat, AtScaleGeneratorsRoundTrip) {
  Rng rng(31);
  const std::string path = TempPath("atscale.fog");
  Graph graph = MakeBoundedDegreeAtScale(5000, 6, 9000, rng);
  AddPeriodicColor(graph, "Red", 7, 0);
  graph.Finalize();
  ASSERT_TRUE(WriteFogFile(path, graph).ok());
  StatusOr<Graph> loaded = LoadFogFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ExpectSameGraph(graph, *loaded);
  std::remove(path.c_str());
}

TEST(FogFormat, LoadGraphAutoSniffsBothFormats) {
  Rng rng(17);
  Graph graph = MakeRandomTree(20, rng);
  AddPeriodicColor(graph, "Red", 2, 0);
  graph.Finalize();
  const std::string text_path = TempPath("auto.graph");
  const std::string fog_path = TempPath("auto.fog");
  ASSERT_TRUE(WriteFileAtomic(text_path, ToText(graph)).ok());
  ASSERT_TRUE(WriteFogFile(fog_path, graph).ok());
  uint64_t text_fp = 0;
  uint64_t fog_fp = 0;
  StatusOr<Graph> from_text = LoadGraphAuto(text_path, &text_fp);
  StatusOr<Graph> from_fog = LoadGraphAuto(fog_path, &fog_fp);
  ASSERT_TRUE(from_text.ok()) << from_text.status().message();
  ASSERT_TRUE(from_fog.ok()) << from_fog.status().message();
  ExpectSameGraph(*from_text, *from_fog);
  // Fingerprints are per-encoding (text hash vs payload checksum) but
  // must be stable across loads of the same file.
  uint64_t text_fp2 = 0;
  ASSERT_TRUE(LoadGraphAuto(text_path, &text_fp2).ok());
  EXPECT_EQ(text_fp, text_fp2);
  uint64_t fog_fp2 = 0;
  ASSERT_TRUE(LoadGraphAuto(fog_path, &fog_fp2).ok());
  EXPECT_EQ(fog_fp, fog_fp2);
  EXPECT_EQ(LoadGraphAuto(TempPath("missing.fog")).status().code(),
            StatusCode::kNotFound);
  std::remove(text_path.c_str());
  std::remove(fog_path.c_str());
}

TEST(FogFormat, MappedGraphsShareOneMapping) {
  Rng rng(19);
  Graph graph = MakeGrid(30, 30);
  graph.Finalize();
  const std::string path = TempPath("shared.fog");
  ASSERT_TRUE(WriteFogFile(path, graph).ok());
  StatusOr<Graph> first = LoadFogFile(path);
  StatusOr<Graph> second = LoadFogFile(path);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Registry hit: both graphs view the same mapped bytes.
  EXPECT_EQ(first->CsrNeighbors().data(), second->CsrNeighbors().data());
  ExpectSameGraph(*first, *second);
  // Copies of a mapped graph stay views (same mapping, no deep copy of
  // the CSR columns)...
  Graph copy(*first);
  EXPECT_EQ(copy.CsrNeighbors().data(), first->CsrNeighbors().data());
  ExpectSameGraph(copy, *first);
  // ...until a mutation, which unpacks to owned storage.
  copy.AddEdge(0, 2);
  copy.Finalize();
  EXPECT_NE(copy.CsrNeighbors().data(), first->CsrNeighbors().data());
  EXPECT_EQ(copy.EdgeCount(), first->EdgeCount() + 1);
  std::remove(path.c_str());
}

TEST(FogFormat, MappedGraphServesAlgorithms) {
  Rng rng(23);
  Graph graph = MakeRandomTree(200, rng);
  AddRandomColors(graph, {"Red"}, 0.3, rng);
  graph.Finalize();
  const std::string path = TempPath("algos.fog");
  ASSERT_TRUE(WriteFogFile(path, graph).ok());
  StatusOr<Graph> loaded = LoadFogFile(path);
  ASSERT_TRUE(loaded.ok());
  // Balls and induced neighbourhoods off the mapped columns agree with
  // the owned-storage original.
  BallCache original_cache(graph);
  BallCache mapped_cache(*loaded);
  for (Vertex v = 0; v < graph.order(); v += 17) {
    const std::span<const Vertex> a = original_cache.VertexBall(v, 2);
    std::vector<Vertex> expected(a.begin(), a.end());
    const std::span<const Vertex> b = mapped_cache.VertexBall(v, 2);
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(), b.begin(),
                           b.end()));
  }
  NeighborhoodExtractor extractor(*loaded);
  const Vertex tuple[] = {5};
  NeighborhoodExtractor::Result local = extractor.Extract(tuple, 2);
  EXPECT_TRUE(local.graph.finalized());
  EXPECT_EQ(local.to_original.size(),
            static_cast<size_t>(local.graph.order()));
  std::remove(path.c_str());
}

TEST(FogFormat, RejectsEveryTruncationAndBitFlip) {
  Rng rng(37);
  Graph graph = MakeRandomTree(9, rng);
  AddPeriodicColor(graph, "Red", 2, 0);
  graph.Finalize();
  const std::string path = TempPath("mangled.fog");
  ASSERT_TRUE(WriteFogFile(path, graph).ok());
  StatusOr<std::string> pristine = ReadFileToString(path);
  ASSERT_TRUE(pristine.ok());

  auto probe = [&](const std::string& bytes, const std::string& what) {
    ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());
    StatusOr<Graph> loaded = LoadFogFile(path);
    if (bytes == *pristine) {
      EXPECT_TRUE(loaded.ok()) << loaded.status().message();
      return;
    }
    ASSERT_FALSE(loaded.ok()) << what;
    EXPECT_EQ(StatusExitCode(loaded.status()), 65) << what;
    EXPECT_FALSE(loaded.status().message().empty());
    // Diagnostics name the offending file.
    EXPECT_NE(loaded.status().message().find(path), std::string::npos);
  };

  for (size_t len = 0; len < pristine->size(); ++len) {
    probe(pristine->substr(0, len),
          "truncation to " + std::to_string(len) + " bytes");
  }
  for (size_t i = 0; i < pristine->size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = *pristine;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      probe(mutated, "bit " + std::to_string(bit) + " of byte " +
                         std::to_string(i));
    }
  }
  std::remove(path.c_str());
}

TEST(FogFormat, RejectsVersionSkewWithDiagnostic) {
  Graph graph = MakePath(4);
  graph.Finalize();
  const std::string path = TempPath("skew.fog");
  ASSERT_TRUE(WriteFogFile(path, graph).ok());
  StatusOr<std::string> bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  // The version field is the u32 at offset 8.
  std::string skewed = *bytes;
  skewed[8] = 2;
  ASSERT_TRUE(WriteFileAtomic(path, skewed).ok());
  StatusOr<Graph> loaded = LoadFogFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(StatusExitCode(loaded.status()), 65);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos)
      << loaded.status().message();
  std::remove(path.c_str());
}

TEST(FogFormat, RejectsChecksumMismatchWithDiagnostic) {
  Graph graph = MakePath(4);
  graph.Finalize();
  const std::string path = TempPath("checksum.fog");
  ASSERT_TRUE(WriteFogFile(path, graph).ok());
  StatusOr<std::string> bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  // The checksum field is the u64 at offset 56.
  std::string forged = *bytes;
  forged[56] = static_cast<char>(forged[56] ^ 0x01);
  ASSERT_TRUE(WriteFileAtomic(path, forged).ok());
  StatusOr<Graph> loaded = LoadFogFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(StatusExitCode(loaded.status()), 65);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
      << loaded.status().message();
  std::remove(path.c_str());
}

// Forged-but-checksummed payloads: recompute the checksum after the edit
// so only the structural validators stand between the bytes and the
// library CHECKs.
TEST(FogFormat, RejectsStructurallyInvalidButChecksummedPayloads) {
  Graph graph = MakePath(6);
  graph.Finalize();
  const std::string path = TempPath("forged.fog");
  ASSERT_TRUE(WriteFogFile(path, graph).ok());
  StatusOr<std::string> bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  constexpr size_t kHeaderBytes = 64;

  auto reseal_and_expect_rejection = [&](std::string file,
                                         const std::string& what) {
    const uint64_t checksum =
        Fnv1a64(std::string_view(file).substr(kHeaderBytes));
    for (int b = 0; b < 8; ++b) {
      file[56 + b] = static_cast<char>((checksum >> (8 * b)) & 0xff);
    }
    ASSERT_TRUE(WriteFileAtomic(path, file).ok());
    StatusOr<Graph> loaded = LoadFogFile(path);
    ASSERT_FALSE(loaded.ok()) << what;
    EXPECT_EQ(StatusExitCode(loaded.status()), 65) << what;
  };

  {
    // Break symmetry: rewrite vertex 0's sole neighbour (1) to 3. The
    // neighbours section follows the 7 u64 offsets.
    std::string forged = *bytes;
    const size_t neighbors_start = kHeaderBytes + 7 * 8;
    forged[neighbors_start] = 3;
    reseal_and_expect_rejection(forged, "asymmetric edge");
  }
  {
    // Out-of-range neighbour id.
    std::string forged = *bytes;
    const size_t neighbors_start = kHeaderBytes + 7 * 8;
    forged[neighbors_start] = 100;
    reseal_and_expect_rejection(forged, "out-of-range neighbour");
  }
  {
    // Non-monotone offsets.
    std::string forged = *bytes;
    forged[kHeaderBytes + 8] = 120;
    reseal_and_expect_rejection(forged, "non-monotone offsets");
  }
  std::remove(path.c_str());
}

TEST(FogFormat, WriterRefusesUnfinalizedGraphViaDeathTest) {
  Graph graph = MakePath(3);  // build mode, never finalized
  EXPECT_DEATH(
      { (void)WriteFogFile(TempPath("unfinalized.fog"), graph); },
      "finalized");
}

}  // namespace
}  // namespace folearn
