#include <gtest/gtest.h>

#include "fo/parser.h"
#include "graph/generators.h"
#include "learn/erm.h"
#include "learn/model_io.h"
#include "util/rng.h"

namespace folearn {
namespace {

TEST(TrainingSetIo, RoundTrip) {
  TrainingSet examples = {{{0, 3}, true}, {{2, 2}, false}, {{4, 1}, true}};
  std::string text = TrainingSetToText(examples);
  std::string error;
  std::optional<TrainingSet> parsed = TrainingSetFromText(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), 3u);
  for (size_t i = 0; i < examples.size(); ++i) {
    EXPECT_EQ((*parsed)[i].tuple, examples[i].tuple);
    EXPECT_EQ((*parsed)[i].label, examples[i].label);
  }
}

TEST(TrainingSetIo, EmptySetRoundTrips) {
  std::string text = TrainingSetToText({});
  std::optional<TrainingSet> parsed = TrainingSetFromText(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(TrainingSetIo, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(TrainingSetFromText("+ 1 2", &error).has_value());
  EXPECT_FALSE(TrainingSetFromText("examples 2\n+ 1", &error).has_value());
  EXPECT_FALSE(TrainingSetFromText("examples 1\n? 1", &error).has_value());
  EXPECT_FALSE(TrainingSetFromText("examples 1\n+ x", &error).has_value());
  EXPECT_FALSE(TrainingSetFromText("", &error).has_value());
}

TEST(HypothesisIo, RoundTripWithParameters) {
  Hypothesis h;
  h.formula = MustParseFormula("E(x1, y1) | (Red(x1) & !x1 = y2)");
  h.query_vars = QueryVars(1);
  h.param_vars = ParamVars(2);
  h.parameters = {4, 7};
  std::string text = HypothesisToText(h);
  std::string error;
  std::optional<Hypothesis> parsed = HypothesisFromText(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->parameters, h.parameters);
  EXPECT_EQ(parsed->query_vars, h.query_vars);
  EXPECT_EQ(parsed->param_vars, h.param_vars);
  // Same classification behaviour on a concrete graph.
  Graph g = MakePath(10);
  g.AddColor("Red");
  g.SetColor(2, *g.FindColor("Red"));
  for (Vertex v = 0; v < g.order(); ++v) {
    Vertex tuple[] = {v};
    EXPECT_EQ(parsed->Classify(g, tuple), h.Classify(g, tuple)) << v;
  }
}

TEST(HypothesisIo, RejectsMalformedModels) {
  std::string error;
  EXPECT_FALSE(HypothesisFromText("formula Red(x1)", &error).has_value());
  EXPECT_FALSE(HypothesisFromText("hypothesis k 1 ell 0", &error)
                   .has_value());
  EXPECT_FALSE(HypothesisFromText(
                   "hypothesis k 1 ell 1\nformula Red(x1)", &error)
                   .has_value());  // missing params
  EXPECT_FALSE(HypothesisFromText(
                   "hypothesis k 1 ell 0\nformula Red(zz)", &error)
                   .has_value());  // unknown free variable
  EXPECT_FALSE(HypothesisFromText(
                   "hypothesis k 1 ell 0\nformula Red(x1", &error)
                   .has_value());  // parse error
}

TEST(HypothesisIo, LearnedModelSurvivesSerialization) {
  Rng rng(60);
  Graph g = MakeRandomTree(25, rng);
  AddRandomColors(g, {"Red"}, 0.4, rng);
  TrainingSet examples = LabelByQuery(
      g, MustParseFormula("exists z. (E(x1, z) & Red(z))"), QueryVars(1),
      AllTuples(g.order(), 1));
  ErmResult result = TypeMajorityErm(g, examples, {}, {1, 1});
  Hypothesis learned = result.hypothesis.ToExplicit();
  std::string text = HypothesisToText(learned);
  std::optional<Hypothesis> restored = HypothesisFromText(text);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(TrainingError(g, *restored, examples),
            TrainingError(g, learned, examples));
  for (const LabeledExample& example : examples) {
    EXPECT_EQ(restored->Classify(g, example.tuple),
              learned.Classify(g, example.tuple));
  }
}

}  // namespace
}  // namespace folearn
