#!/bin/sh
# Memory-governance soak for folearnd. Phase 1 runs a roomy budget and
# requires normal service — including a query against a memory-mapped
# 10^5-vertex .fog session — plus live accounting in stats. Phase 2
# pins an impossibly tight budget and hammers the daemon with four
# concurrent clients mixing mmap-backed at-scale loads, heap-building
# text loads, and learns: every response must be a well-formed success
# (0) or a retry-safe shed/partial (3) — never a crash, a hung
# connection, or a daemon death — the watchdog must record the tier
# transition, and the heartbeat path must stay open throughout. Both
# daemons must still shut down cleanly on SIGTERM. $1 is the directory
# holding the binaries.
set -eu

TOOLS="$1"
DIR="$(mktemp -d)"
SOCK="$DIR/folearnd.sock"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

client() {
  "$TOOLS/folearn_client" --socket "$SOCK" "$@"
}

start_daemon() {
  rm -f "$SOCK"
  "$TOOLS/folearnd" --socket "$SOCK" "$@" 2> "$DIR/daemon.log" &
  DAEMON_PID=$!
  tries=0
  while [ ! -S "$SOCK" ]; do
    tries=$((tries + 1))
    [ "$tries" -lt 100 ] || { echo "daemon never bound $SOCK" >&2; exit 1; }
    kill -0 "$DAEMON_PID" 2>/dev/null || {
      echo "daemon died at startup:" >&2; cat "$DIR/daemon.log" >&2; exit 1
    }
    sleep 0.1
  done
}

stop_daemon() {
  kill "$DAEMON_PID"
  daemon_rc=0
  wait "$DAEMON_PID" || daemon_rc=$?
  DAEMON_PID=""
  [ "$daemon_rc" -eq 0 ] || {
    echo "daemon exit $daemon_rc:" >&2; cat "$DIR/daemon.log" >&2; exit 1
  }
}

# Shared problem setup: a small coloured tree with an "is Red" dataset
# (the learn workload), plus a 10^5-vertex bounded-degree graph packed
# to .fog (the mmap-backed at-scale session the pressure tiers must
# keep admitting below black).
"$TOOLS/folearn_cli" generate --family bounded-degree --n 100000 \
    --degree 8 --seed 11 --color Red:0.2 --out "$DIR/big.txt"
"$TOOLS/folearn_cli" graph-pack --graph "$DIR/big.txt" \
    --out "$DIR/big.fog"
rm -f "$DIR/big.txt"
"$TOOLS/folearn_cli" generate --family tree --n 30 --seed 7 \
    --color Red:0.3 --out "$DIR/g.txt"
reds=$(grep '^color Red' "$DIR/g.txt" | cut -d' ' -f3-)
{
  echo "examples 1"
  v=0
  while [ "$v" -lt 30 ]; do
    label="-"
    for r in $reds; do
      [ "$r" = "$v" ] && label="+"
    done
    echo "$label $v"
    v=$((v + 1))
  done
} > "$DIR/d.txt"

# ---------------------------------------------------------------------
# Phase 1: a roomy budget must not change behaviour, and the accounting
# gauges must be live.
start_daemon --mem-budget-bytes 2147483648 --mem-watchdog-ms 20
client load-graph --graph-file "$DIR/g.txt" > "$DIR/load.out"
session=$(sed -n 's/^session: //p' "$DIR/load.out")
[ -n "$session" ] || { echo "phase 1: no session id" >&2; exit 1; }
client learn --session "$session" --data-file "$DIR/d.txt" \
    --rank 1 --radius 1 --out "$DIR/m.txt" > "$DIR/learn.out"
grep -q '^training-error: 0.000000$' "$DIR/learn.out"
# A memory-mapped 10^5-vertex session must serve queries normally.
client load-graph --graph-path "$DIR/big.fog" > "$DIR/bigload.out"
big=$(sed -n 's/^session: //p' "$DIR/bigload.out")
[ -n "$big" ] || { echo "phase 1: no big session id" >&2; exit 1; }
client query --session "$big" --sentence 'exists x. Red(x)' \
    > "$DIR/bigquery.out"
grep -q '^result: true$' "$DIR/bigquery.out"
client stats > "$DIR/stats1.out"
grep -q '^mem-tier: green$' "$DIR/stats1.out"
grep -q '^mem-budget-bytes: 2147483648$' "$DIR/stats1.out"
grep -q '^mem-used-bytes: [1-9]' "$DIR/stats1.out"
grep -q '^rss-bytes: [1-9]' "$DIR/stats1.out"
stop_daemon

# ---------------------------------------------------------------------
# Phase 2: a 2 MiB budget is below any live RSS, so the watchdog walks
# the daemon to black almost immediately. Hammer it.
start_daemon --mem-budget-bytes 2097152 --mem-watchdog-ms 20
sleep 0.3   # a few watchdog ticks: let the tier settle

# Four concurrent clients hammer a mixed workload: even iterations try
# to open an mmap-backed 10^5-vertex session, odd ones a heap-building
# text graph followed (if admitted) by a governed learn.
soak_loop() {
  who=$1
  i=0
  while [ "$i" -lt 25 ]; do
    rc=0
    if [ $((i % 2)) -eq 0 ]; then
      client load-graph --graph-path "$DIR/big.fog" \
          > "$DIR/soak_load.$who" 2> "$DIR/soak_err.$who" || rc=$?
    else
      client load-graph --graph-file "$DIR/g.txt" \
          > "$DIR/soak_load.$who" 2> "$DIR/soak_err.$who" || rc=$?
    fi
    [ "$rc" -eq 0 ] || [ "$rc" -eq 3 ] || {
      echo "soak client $who load iteration $i: exit $rc" >&2
      cat "$DIR/soak_err.$who" >&2
      return 1
    }
    if [ "$rc" -eq 0 ] && [ $((i % 2)) -eq 1 ]; then
      # Admitted: the learn on that session must itself finish
      # governed — complete or partial, never a crash.
      s=$(sed -n 's/^session: //p' "$DIR/soak_load.$who")
      rc=0
      client learn --session "$s" --data-file "$DIR/d.txt" \
          --rank 1 --radius 1 --out /dev/null > /dev/null 2>&1 || rc=$?
      [ "$rc" -eq 0 ] || [ "$rc" -eq 3 ] || {
        echo "soak client $who learn iteration $i: exit $rc" >&2
        return 1
      }
    fi
    # The heartbeat path stays open at every tier.
    client ping > /dev/null 2>&1
    i=$((i + 1))
  done
}

pids=""
for who in 1 2 3 4; do
  soak_loop "$who" &
  pids="$pids $!"
done
soak_rc=0
for pid in $pids; do
  wait "$pid" || soak_rc=1
done
[ "$soak_rc" -eq 0 ] || { echo "soak client failed" >&2; exit 1; }
kill -0 "$DAEMON_PID" 2>/dev/null || {
  echo "daemon died during soak:" >&2; cat "$DIR/daemon.log" >&2; exit 1
}

# The watchdog saw the pressure: the tier moved off green and said so.
client stats > "$DIR/stats2.out"
grep -q '^tier-transitions: [1-9]' "$DIR/stats2.out"
grep -q '^mem-tier: ' "$DIR/stats2.out"
grep -q '^mem-shed: [1-9]' "$DIR/stats2.out"

# Still alive, still polite.
client ping > /dev/null 2>&1
stop_daemon

echo "server mem soak test passed"
