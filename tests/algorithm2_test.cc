#include <gtest/gtest.h>

#include "fo/parser.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "learn/algorithm2.h"
#include "util/rng.h"

namespace folearn {
namespace {

TEST(Algorithm2, ParameterFreeCandidate) {
  Graph g = MakePath(8);
  AddPeriodicColor(g, "Red", 2, 0);
  TrainingSet examples;
  for (Vertex v = 0; v < g.order(); ++v) {
    examples.push_back({{v}, v % 2 == 0});
  }
  std::vector<FormulaRef> candidates = {MustParseFormula("Red(x1)")};
  Algorithm2Result result = RealizableUnaryErm(g, examples, 0, candidates);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(TrainingError(g, result.hypothesis, examples), 0.0);
}

TEST(Algorithm2, FindsSingleParameter) {
  // Target: x adjacent to the hub of the first star (y1 = hub).
  Graph g = DisjointCopies(MakeStar(5), 2);  // hubs 0, 6
  TrainingSet examples;
  for (Vertex v = 1; v <= 5; ++v) examples.push_back({{v}, true});
  for (Vertex v = 7; v <= 11; ++v) examples.push_back({{v}, false});
  std::vector<FormulaRef> candidates = {MustParseFormula("E(x1, y1)")};
  Algorithm2Result result = RealizableUnaryErm(g, examples, 1, candidates);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.hypothesis.parameters.size(), 1u);
  EXPECT_EQ(result.hypothesis.parameters[0], 0);  // the first hub
  EXPECT_EQ(TrainingError(g, result.hypothesis, examples), 0.0);
}

TEST(Algorithm2, SkipsInconsistentCandidates) {
  Graph g = MakeStar(4);
  TrainingSet examples = {{{0}, true}, {{1}, false}};
  std::vector<FormulaRef> candidates = {
      MustParseFormula("Red(x1)"),   // no Red colour would even evaluate…
      MustParseFormula("E(x1, y1)"),  // hub adjacent to any leaf: works
  };
  // Use only parseable/evaluable candidates over this vocabulary:
  candidates.erase(candidates.begin());
  Algorithm2Result result = RealizableUnaryErm(g, examples, 1, candidates);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(TrainingError(g, result.hypothesis, examples), 0.0);
}

TEST(Algorithm2, TwoParameters) {
  // Path; target: x is adjacent to y1 or adjacent to y2 for two hidden
  // marks at 2 and 9.
  Graph g = MakePath(12);
  TrainingSet examples;
  for (Vertex v = 0; v < g.order(); ++v) {
    bool label = std::abs(v - 2) == 1 || std::abs(v - 9) == 1;
    examples.push_back({{v}, label});
  }
  std::vector<FormulaRef> candidates = {
      MustParseFormula("E(x1, y1) | E(x1, y2)")};
  Algorithm2Result result = RealizableUnaryErm(g, examples, 2, candidates);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(TrainingError(g, result.hypothesis, examples), 0.0);
  EXPECT_GT(result.model_checking_calls, 0);
}

TEST(Algorithm2, ReportsFailureWhenNoCandidateFits) {
  Graph g = MakePath(4);
  // Contradictory labels on the same vertex: nothing is consistent.
  TrainingSet examples = {{{1}, true}, {{1}, false}};
  std::vector<FormulaRef> candidates = {MustParseFormula("E(x1, y1)")};
  Algorithm2Result result = RealizableUnaryErm(g, examples, 1, candidates);
  EXPECT_FALSE(result.found);
}

TEST(Algorithm2, PrefixSearchUsesLinearlyManyCalls) {
  Graph g = MakePath(10);
  TrainingSet examples;
  for (Vertex v = 0; v < g.order(); ++v) {
    examples.push_back({{v}, std::abs(v - 4) <= 1});
  }
  std::vector<FormulaRef> candidates = {
      MustParseFormula("E(x1, y1) | x1 = y1")};
  Algorithm2Result result = RealizableUnaryErm(g, examples, 1, candidates);
  ASSERT_TRUE(result.found);
  // ℓ·n = 10 calls upper-bounds the successful candidate's search (plus
  // none for rejected prefixes since the first vertex tried may fail).
  EXPECT_LE(result.model_checking_calls, 10);
}

TEST(Algorithm2, DefaultCandidatesSolveDistanceTargets) {
  // Two disjoint stars; target: within distance 1 of the first hub. The
  // default candidate family contains the dist(x1, ȳ) ≤ 1 template, so the
  // prefix search must find the hub.
  Graph g = DisjointCopies(MakeStar(6), 2);
  TrainingSet examples;
  examples.push_back({{0}, true});  // hub itself (distance 0)
  for (Vertex v = 1; v <= 6; ++v) examples.push_back({{v}, true});
  for (Vertex v = 7; v <= 13; ++v) examples.push_back({{v}, false});
  std::vector<FormulaRef> candidates =
      DefaultUnaryCandidates(g, examples, /*ell=*/1, /*rank=*/1,
                             /*radius=*/1);
  EXPECT_GE(candidates.size(), 2u);
  Algorithm2Result result = RealizableUnaryErm(g, examples, 1, candidates);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(TrainingError(g, result.hypothesis, examples), 0.0);
}

TEST(Algorithm2, DefaultCandidatesSolveTypeTargets) {
  // Parameter-free target: "x is red" — covered by the positive-type
  // disjunction in the default family.
  Graph g = MakePath(12);
  AddPeriodicColor(g, "Red", 3, 1);
  TrainingSet examples;
  for (Vertex v = 0; v < g.order(); ++v) {
    examples.push_back({{v}, v % 3 == 1});
  }
  std::vector<FormulaRef> candidates =
      DefaultUnaryCandidates(g, examples, /*ell=*/0, /*rank=*/1,
                             /*radius=*/1);
  Algorithm2Result result = RealizableUnaryErm(g, examples, 0, candidates);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(TrainingError(g, result.hypothesis, examples), 0.0);
}

}  // namespace
}  // namespace folearn
