// Property tests (TEST_P sweeps) for the type machinery: Fact 5 refinement,
// Hintikka self-description, type/formula agreement, and counting-type
// invariants across graph families and seeds.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "fo/parser.h"
#include "mc/evaluator.h"
#include "test_helpers.h"
#include "types/counting_type.h"
#include "types/hintikka.h"
#include "types/type.h"

namespace folearn {
namespace {

struct FamilySeedParam {
  GraphFamily family;
  int seed;
};

std::string FamilySeedName(
    const ::testing::TestParamInfo<FamilySeedParam>& info) {
  return std::string(FamilyName(info.param.family)) + "_" +
         std::to_string(info.param.seed);
}

class TypesProperty : public ::testing::TestWithParam<FamilySeedParam> {
 protected:
  Graph MakeGraph(int n) {
    Rng rng(GetParam().seed);
    Graph g = MakeFamilyGraph(GetParam().family, n, rng);
    AddRandomColors(g, {"Red"}, 0.4, rng);
    return g;
  }
};

// Fact 5: equal (q, r(q))-local types ⇒ equal q-types.
TEST_P(TypesProperty, Fact5LocalTypesRefineGlobalTypes) {
  Graph g = MakeGraph(14);
  TypeRegistry registry(g.vocabulary());
  const int q = 1;
  const int r = GaifmanRadius(q);
  for (Vertex u = 0; u < g.order(); ++u) {
    for (Vertex v = u + 1; v < g.order(); ++v) {
      Vertex a[] = {u};
      Vertex b[] = {v};
      if (ComputeLocalType(g, a, q, r, &registry) ==
          ComputeLocalType(g, b, q, r, &registry)) {
        ASSERT_EQ(ComputeType(g, a, q, &registry),
                  ComputeType(g, b, q, &registry))
            << "u=" << u << " v=" << v;
      }
    }
  }
}

// Rank monotonicity: rank-(q+1) types refine rank-q types.
TEST_P(TypesProperty, HigherRankRefines) {
  Graph g = MakeGraph(12);
  TypeRegistry registry(g.vocabulary());
  std::map<TypeId, std::set<TypeId>> coarse_of_fine;
  for (Vertex v = 0; v < g.order(); ++v) {
    Vertex tuple[] = {v};
    TypeId fine = ComputeType(g, tuple, 2, &registry);
    TypeId coarse = ComputeType(g, tuple, 1, &registry);
    coarse_of_fine[fine].insert(coarse);
  }
  for (const auto& [fine, coarse_set] : coarse_of_fine) {
    EXPECT_EQ(coarse_set.size(), 1u)
        << "a rank-2 class split across rank-1 classes";
  }
}

// Hintikka formulas define their types exactly, at rank 1 and 2.
TEST_P(TypesProperty, HintikkaSelfDescription) {
  Graph g = MakeGraph(9);
  TypeRegistry registry(g.vocabulary());
  HintikkaBuilder builder(registry);
  std::string vars[] = {"x1"};
  for (int rank : {1, 2}) {
    std::vector<TypeId> types;
    for (Vertex v = 0; v < g.order(); ++v) {
      Vertex tuple[] = {v};
      types.push_back(ComputeType(g, tuple, rank, &registry));
    }
    for (Vertex v = 0; v < g.order(); v += 2) {
      FormulaRef phi = builder.Build(types[v], {"x1"});
      EXPECT_LE(phi->quantifier_rank(), rank);
      for (Vertex u = 0; u < g.order(); ++u) {
        Vertex tuple[] = {u};
        ASSERT_EQ(EvaluateQuery(g, phi, vars, tuple), types[u] == types[v])
            << "rank=" << rank << " u=" << u << " v=" << v;
      }
    }
  }
}

// Local Hintikka formulas relativised to radius r define local types on
// the full graph.
TEST_P(TypesProperty, LocalHintikkaOnFullGraph) {
  Graph g = MakeGraph(10);
  TypeRegistry registry(g.vocabulary());
  HintikkaBuilder builder(registry);
  const int rank = 1;
  const int radius = 2;
  std::vector<TypeId> local_types;
  for (Vertex v = 0; v < g.order(); ++v) {
    Vertex tuple[] = {v};
    local_types.push_back(
        ComputeLocalType(g, tuple, rank, radius, &registry));
  }
  std::string vars[] = {"x1"};
  for (Vertex v = 0; v < g.order(); v += 3) {
    FormulaRef phi = builder.BuildLocal(local_types[v], {"x1"}, radius);
    for (Vertex u = 0; u < g.order(); ++u) {
      Vertex tuple[] = {u};
      ASSERT_EQ(EvaluateQuery(g, phi, vars, tuple),
                local_types[u] == local_types[v])
          << "u=" << u << " v=" << v;
    }
  }
}

// Counting types with cap T refine plain types; counting Hintikka formulas
// self-describe.
TEST_P(TypesProperty, CountingTypesRefinePlainTypes) {
  Graph g = MakeGraph(12);
  TypeRegistry plain(g.vocabulary());
  CountingTypeRegistry counting(g.vocabulary(), 3);
  std::map<TypeId, std::set<TypeId>> plain_of_counting;
  for (Vertex v = 0; v < g.order(); ++v) {
    Vertex tuple[] = {v};
    TypeId c = ComputeCountingType(g, tuple, 1, &counting);
    TypeId p = ComputeType(g, tuple, 1, &plain);
    plain_of_counting[c].insert(p);
  }
  for (const auto& [c, plain_set] : plain_of_counting) {
    EXPECT_EQ(plain_set.size(), 1u)
        << "a counting class split across plain classes";
  }
}

// Pair types: equal pair types imply equal evaluation of a fixed slice of
// rank-1 pair formulas.
TEST_P(TypesProperty, PairTypeAgreement) {
  Graph g = MakeGraph(8);
  TypeRegistry registry(g.vocabulary());
  const char* formulas[] = {
      "E(x1, x2)",
      "x1 = x2",
      "exists z. (E(x1, z) & E(z, x2))",
      "exists z. (E(x1, z) & Red(z))",
      "forall z. (E(x1, z) -> !E(x2, z))",
  };
  std::string vars[] = {"x1", "x2"};
  std::map<TypeId, std::vector<std::pair<Vertex, Vertex>>> classes;
  TypeComputer computer(g, &registry);
  for (Vertex a = 0; a < g.order(); ++a) {
    for (Vertex b = 0; b < g.order(); ++b) {
      Vertex tuple[] = {a, b};
      classes[computer.Type(tuple, 1)].push_back({a, b});
    }
  }
  for (const char* text : formulas) {
    FormulaRef f = MustParseFormula(text);
    if (f->quantifier_rank() > 1) continue;
    for (const auto& [type, members] : classes) {
      Vertex first[] = {members[0].first, members[0].second};
      bool expected = EvaluateQuery(g, f, vars, first);
      for (const auto& [a, b] : members) {
        Vertex tuple[] = {a, b};
        ASSERT_EQ(EvaluateQuery(g, f, vars, tuple), expected)
            << text << " (" << a << "," << b << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, TypesProperty,
    ::testing::Values(FamilySeedParam{GraphFamily::kPath, 31},
                      FamilySeedParam{GraphFamily::kCycle, 32},
                      FamilySeedParam{GraphFamily::kRandomTree, 33},
                      FamilySeedParam{GraphFamily::kRandomTree, 34},
                      FamilySeedParam{GraphFamily::kCaterpillar, 35},
                      FamilySeedParam{GraphFamily::kGrid, 36},
                      FamilySeedParam{GraphFamily::kBoundedDegree, 37},
                      FamilySeedParam{GraphFamily::kErdosRenyiSparse, 38},
                      FamilySeedParam{GraphFamily::kStar, 39}),
    FamilySeedName);

}  // namespace
}  // namespace folearn
