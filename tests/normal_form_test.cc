#include <gtest/gtest.h>

#include "fo/normal_form.h"
#include "fo/parser.h"
#include "fo/printer.h"
#include "mc/evaluator.h"
#include "test_helpers.h"

namespace folearn {
namespace {

TEST(NegationNormalForm, PushesNegationsToAtoms) {
  FormulaRef f = MustParseFormula("!(exists z. (E(x, z) & !Red(z)))");
  FormulaRef nnf = ToNegationNormalForm(f);
  EXPECT_TRUE(IsNegationNormalForm(nnf));
  EXPECT_EQ(ToString(nnf), "forall z. !E(x, z) | Red(z)");
  EXPECT_EQ(nnf->quantifier_rank(), f->quantifier_rank());
}

TEST(NegationNormalForm, DeMorganOverNaryConnectives) {
  FormulaRef f = MustParseFormula("!(A(x) & B(x) & C(x))");
  FormulaRef nnf = ToNegationNormalForm(f);
  EXPECT_EQ(ToString(nnf), "!A(x) | !B(x) | !C(x)");
}

TEST(NegationNormalForm, CountingNegationIsKept) {
  FormulaRef f = MustParseFormula("!(exists>=2 z. E(x, z))");
  FormulaRef nnf = ToNegationNormalForm(f);
  EXPECT_TRUE(IsNegationNormalForm(nnf));
  EXPECT_EQ(nnf->kind(), FormulaKind::kNot);
  EXPECT_EQ(nnf->child(0)->kind(), FormulaKind::kCountExists);
}

TEST(PrenexNormalForm, ProducesPrefixMatrixShape) {
  FormulaRef f = MustParseFormula(
      "(exists z. E(x, z)) & (forall w. (E(x, w) -> Red(w)))");
  EXPECT_FALSE(IsPrenex(f));
  FormulaRef prenex = ToPrenexNormalForm(f);
  EXPECT_TRUE(IsPrenex(prenex));
  EXPECT_EQ(prenex->free_variables(), f->free_variables());
}

TEST(PrenexNormalForm, AvoidsVariableCapture) {
  // Both conjuncts bind z; pulling them out must rename apart.
  FormulaRef f = MustParseFormula(
      "(exists z. E(x, z)) & (exists z. Red(z))");
  FormulaRef prenex = ToPrenexNormalForm(f);
  EXPECT_TRUE(IsPrenex(prenex));
  // Two quantifier occurrences survive.
  EXPECT_EQ(ComputeFormulaStats(prenex).quantifier_occurrences, 2);
}

// Semantics preservation over random formulas and graphs.
TEST(NormalForms, PreserveSemantics) {
  Rng rng(55);
  Graph g = MakeFamilyGraph(GraphFamily::kRandomTree, 7, rng);
  AddRandomColors(g, {"Red"}, 0.5, rng);
  std::string vars[] = {"x1"};
  for (int i = 0; i < 40; ++i) {
    FormulaRef f = RandomFormula(rng, {"x1"}, {"Red"}, 2, 4);
    FormulaRef nnf = ToNegationNormalForm(f);
    FormulaRef prenex = ToPrenexNormalForm(f);
    EXPECT_TRUE(IsNegationNormalForm(nnf)) << ToString(f);
    EXPECT_TRUE(IsPrenex(prenex)) << ToString(f);
    for (Vertex v = 0; v < g.order(); ++v) {
      Vertex tuple[] = {v};
      bool original = EvaluateQuery(g, f, vars, tuple);
      ASSERT_EQ(original, EvaluateQuery(g, nnf, vars, tuple))
          << "NNF broke " << ToString(f) << " at " << v;
      ASSERT_EQ(original, EvaluateQuery(g, prenex, vars, tuple))
          << "PNF broke " << ToString(f) << " at " << v;
    }
  }
}

TEST(NormalForms, NnfIsIdempotent) {
  Rng rng(56);
  for (int i = 0; i < 20; ++i) {
    FormulaRef f = RandomFormula(rng, {"x1"}, {"Red"}, 2, 3);
    FormulaRef once = ToNegationNormalForm(f);
    FormulaRef twice = ToNegationNormalForm(once);
    EXPECT_EQ(ToString(once), ToString(twice));
  }
}

TEST(PrenexNormalForm, DiesOnCountingQuantifiers) {
  FormulaRef f = MustParseFormula("Red(x) & exists>=2 z. E(x, z)");
  EXPECT_DEATH(ToPrenexNormalForm(f), "counting-free");
}

TEST(FormulaStats, CountsShape) {
  FormulaRef f = MustParseFormula(
      "exists z. (E(x, z) & forall w. (E(z, w) -> Red(w)))");
  FormulaStats stats = ComputeFormulaStats(f);
  EXPECT_EQ(stats.quantifier_rank, 2);
  EXPECT_EQ(stats.quantifier_occurrences, 2);
  EXPECT_GE(stats.atom_occurrences, 3);
  EXPECT_GT(stats.connective_occurrences, 0);
  EXPECT_GT(stats.dag_nodes, 5);
}

}  // namespace
}  // namespace folearn
