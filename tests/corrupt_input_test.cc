#include <gtest/gtest.h>

#include <string>

#include "graph/generators.h"
#include "graph/io.h"
#include "learn/model_io.h"
#include "learn/search_state.h"
#include "util/checkpoint.h"
#include "util/rng.h"
#include "util/status.h"

namespace folearn {
namespace {

// Fuzz-style robustness: every loader that consumes external bytes must
// hand back a Status (or a parse success) on arbitrarily mangled input —
// never crash, never read out of bounds. Run under ASan/UBSan these tests
// are the memory-safety net for exit code 65's "diagnostic, not UB"
// contract. Exhaustive single-bit flips and prefix truncations keep the
// corpus deterministic (no flaky random fuzzing in CI).

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// A representative valid graph file.
std::string ValidGraphText() {
  Rng rng(3);
  Graph g = MakeRandomTree(12, rng);
  AddRandomColors(g, {"Red", "Blue"}, 0.4, rng);
  return ToText(g);
}

std::string ValidModelText() {
  return
      "hypothesis k 1 ell 2\n"
      "params 3 7\n"
      "formula exists z. (E(x1, z) & Red(z))\n";
}

std::string ValidDataText() {
  return
      "examples 2\n"
      "+ 0 1\n"
      "- 2 3\n"
      "+ 4 5\n";
}

std::string ValidCheckpointBytes() {
  const std::string path = TempPath("seed.ckpt");
  SearchFrontier frontier;
  frontier.learner = "brute";
  frontier.fingerprint = 0xabcdef;
  frontier.cursor = 100;
  frontier.best_index = 42;
  frontier.best_error = 0.125;
  frontier.tried = 100;
  EXPECT_TRUE(SaveFrontier(path, frontier).ok());
  StatusOr<std::string> bytes = ReadFileToString(path);
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

// Feeds every prefix truncation and every single-bit flip of `text` to
// `probe`, which must return normally (no aborts, no UB) on each variant.
template <typename Probe>
void ExhaustivelyMangle(const std::string& text, const Probe& probe) {
  for (size_t len = 0; len <= text.size(); ++len) {
    probe(text.substr(0, len));
  }
  for (size_t i = 0; i < text.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = text;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      probe(mutated);
    }
  }
}

TEST(CorruptInput, GraphLoaderNeverAborts) {
  ExhaustivelyMangle(ValidGraphText(), [](const std::string& bytes) {
    StatusOr<Graph> graph = ParseGraph(bytes);
    if (!graph.ok()) {
      EXPECT_FALSE(graph.status().message().empty());
    }
  });
}

// The 32-bit vertex-id boundary: orders past kMaxGraphOrder must come
// back as a parse error (exit-65 semantics), not wrap or abort — whether
// they fit in an int or overflow the integer parser itself.
TEST(CorruptInput, GraphLoaderRejectsOversizedOrders) {
  for (const char* text :
       {"graph 2147483647\n", "graph 4294967296\n", "graph 99999999999\n"}) {
    StatusOr<Graph> graph = ParseGraph(text);
    ASSERT_FALSE(graph.ok()) << text;
    EXPECT_FALSE(graph.status().message().empty());
  }
}

TEST(CorruptInput, ModelLoaderNeverAborts) {
  ExhaustivelyMangle(ValidModelText(), [](const std::string& bytes) {
    StatusOr<Hypothesis> hypothesis = ParseHypothesis(bytes);
    if (!hypothesis.ok()) {
      EXPECT_FALSE(hypothesis.status().message().empty());
    }
  });
}

TEST(CorruptInput, TrainingSetLoaderNeverAborts) {
  ExhaustivelyMangle(ValidDataText(), [](const std::string& bytes) {
    StatusOr<TrainingSet> data = ParseTrainingSet(bytes);
    if (!data.ok()) {
      EXPECT_FALSE(data.status().message().empty());
    }
  });
}

TEST(CorruptInput, CheckpointLoaderRejectsEveryMangling) {
  const std::string original = ValidCheckpointBytes();
  const std::string path = TempPath("mangled.ckpt");
  ExhaustivelyMangle(original, [&](const std::string& bytes) {
    ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());
    StatusOr<SearchFrontier> frontier = LoadFrontier(path);
    // Unlike free-text formats, the envelope is checksummed: anything but
    // the pristine bytes must be refused, with exit code 65 semantics.
    if (bytes == original) {
      EXPECT_TRUE(frontier.ok()) << frontier.status().message();
    } else {
      ASSERT_FALSE(frontier.ok());
      EXPECT_EQ(StatusExitCode(frontier.status()), 65);
      EXPECT_FALSE(frontier.status().message().empty());
    }
  });
}

// Foreign bytes that are not even close to the format.
TEST(CorruptInput, ForeignBytesAreRejectedEverywhere) {
  const std::string foreign[] = {
      "", "\n", std::string(4, '\0'), "PK\x03\x04 zip header",
      std::string(4096, 'A'), "graph", "folearn-checkpoint",
      "folearn-checkpoint v1\nlength 999999999999999999999\ncrc zz\n"};
  const std::string path = TempPath("foreign.ckpt");
  for (const std::string& bytes : foreign) {
    EXPECT_FALSE(ParseFrontier(bytes).ok());
    ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());
    EXPECT_FALSE(LoadFrontier(path).ok());
    // Graph/model/data parsers may accept some degenerate strings; the
    // contract is only "no crash".
    ParseGraph(bytes);
    ParseHypothesis(bytes);
    ParseTrainingSet(bytes);
  }
}

}  // namespace
}  // namespace folearn
