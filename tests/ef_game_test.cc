#include <gtest/gtest.h>

#include "graph/generators.h"
#include "test_helpers.h"
#include "types/ef_game.h"
#include "types/type.h"
#include "util/rng.h"

namespace folearn {
namespace {

TEST(EfGame, ZeroRoundsIsAtomicCheck) {
  Graph g = MakePath(3);
  Vertex edge_pair[] = {0, 1};
  Vertex far_pair[] = {0, 2};
  EXPECT_TRUE(DuplicatorWins(g, edge_pair, g, edge_pair, 0));
  EXPECT_FALSE(DuplicatorWins(g, edge_pair, g, far_pair, 0));
}

TEST(EfGame, IsomorphicGraphsAreEquivalentAtAnyRank) {
  Rng rng(70);
  Graph tree = MakeRandomTree(7, rng);
  // An isomorphic copy via the disjoint-copies trick (copy 1 ≅ copy 0).
  Graph two = DisjointCopies(tree, 2);
  // Play on the induced copies (same graph `two`, shifted tuples).
  Vertex a[] = {2};
  Vertex b[] = {2 + 7};
  Graph copy = tree;  // structurally identical graph object
  EXPECT_TRUE(DuplicatorWins(tree, a, copy, a, 3));
  (void)two;
  (void)b;
}

TEST(EfGame, PathEndpointVsMidpoint) {
  Graph g = MakePath(5);
  Vertex end[] = {0};
  Vertex mid[] = {2};
  // Rank 1 cannot separate endpoint from midpoint (no counting); rank 2
  // can ("has two distinct neighbours").
  EXPECT_TRUE(DuplicatorWins(g, end, g, mid, 1));
  EXPECT_FALSE(DuplicatorWins(g, end, g, mid, 2));
  EXPECT_EQ(SpoilerWinningRounds(g, end, g, mid, 4), 2);
}

TEST(EfGame, PathsOfDifferentParityOfTypes) {
  // P4 vs C4 as sentences (empty tuples): rank 2 equivalent, rank 3 not
  // (mirrors Types.EmptyTupleDistinguishesGraphs).
  Graph path = MakePath(4);
  Graph cycle = MakeCycle(4);
  std::span<const Vertex> empty;
  EXPECT_TRUE(DuplicatorWins(path, empty, cycle, empty, 2));
  EXPECT_FALSE(DuplicatorWins(path, empty, cycle, empty, 3));
  EXPECT_EQ(SpoilerWinningRounds(path, empty, cycle, empty, 5), 3);
}

TEST(EfGame, LongPathsBecomeEquivalent) {
  // Classical: sufficiently long paths are rank-q equivalent even when
  // their lengths differ (threshold ~2^q).
  Graph p20 = MakePath(20);
  Graph p30 = MakePath(30);
  std::span<const Vertex> empty;
  EXPECT_TRUE(DuplicatorWins(p20, empty, p30, empty, 2));
  EXPECT_TRUE(DuplicatorWins(p20, empty, p30, empty, 3));
  // Short paths differ at low rank.
  Graph p2 = MakePath(2);
  Graph p3 = MakePath(3);
  EXPECT_FALSE(DuplicatorWins(p2, empty, p3, empty, 3));
}

// The cross-validation that matters: the explicit game agrees with the
// hash-consed type computation on random graphs, for all vertex pairs.
struct EfParam {
  GraphFamily family;
  int seed;
  int rounds;
};

class EfTypeAgreement : public ::testing::TestWithParam<EfParam> {};

TEST_P(EfTypeAgreement, GameEqualsTypeEquality) {
  Rng rng(GetParam().seed);
  Graph g = MakeFamilyGraph(GetParam().family, 7, rng);
  AddRandomColors(g, {"Red"}, 0.5, rng);
  TypeRegistry registry(g.vocabulary());
  const int q = GetParam().rounds;
  std::vector<TypeId> types;
  for (Vertex v = 0; v < g.order(); ++v) {
    Vertex tuple[] = {v};
    types.push_back(ComputeType(g, tuple, q, &registry));
  }
  for (Vertex u = 0; u < g.order(); ++u) {
    for (Vertex v = u; v < g.order(); ++v) {
      Vertex a[] = {u};
      Vertex b[] = {v};
      bool same_type = types[u] == types[v];
      bool duplicator = DuplicatorWins(g, a, g, b, q);
      ASSERT_EQ(same_type, duplicator)
          << FamilyName(GetParam().family) << " q=" << q << " u=" << u
          << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndRanks, EfTypeAgreement,
    ::testing::Values(EfParam{GraphFamily::kPath, 71, 1},
                      EfParam{GraphFamily::kPath, 71, 2},
                      EfParam{GraphFamily::kCycle, 72, 2},
                      EfParam{GraphFamily::kRandomTree, 73, 1},
                      EfParam{GraphFamily::kRandomTree, 73, 2},
                      EfParam{GraphFamily::kErdosRenyiSparse, 74, 2},
                      EfParam{GraphFamily::kStar, 75, 2}),
    [](const ::testing::TestParamInfo<EfParam>& info) {
      return std::string(FamilyName(info.param.family)) + "_s" +
             std::to_string(info.param.seed) + "_q" +
             std::to_string(info.param.rounds);
    });

TEST(EfGame, CrossGraphTypeAgreement) {
  // Types interned in one registry across two graphs agree with the
  // cross-graph game.
  Rng rng(76);
  Graph g = MakeRandomTree(6, rng);
  Graph h = MakeCycle(6);
  TypeRegistry registry(g.vocabulary());
  const int q = 2;
  for (Vertex u = 0; u < g.order(); ++u) {
    for (Vertex v = 0; v < h.order(); ++v) {
      Vertex a[] = {u};
      Vertex b[] = {v};
      bool same_type = ComputeType(g, a, q, &registry) ==
                       ComputeType(h, b, q, &registry);
      EXPECT_EQ(same_type, DuplicatorWins(g, a, h, b, q))
          << "u=" << u << " v=" << v;
    }
  }
}

TEST(EfGame, StatsCountPositions) {
  Graph g = MakePath(4);
  EfGameStats stats;
  Vertex a[] = {0};
  Vertex b[] = {1};
  DuplicatorWins(g, a, g, b, 2, &stats);
  EXPECT_GT(stats.positions_explored, 1);
}

TEST(EfGame, VocabularyMismatchDies) {
  Graph g = MakePath(3);
  Graph h = MakePath(3);
  h.AddColor("Red");
  std::span<const Vertex> empty;
  EXPECT_DEATH(DuplicatorWins(g, empty, h, empty, 1), "vocabulary");
}

}  // namespace
}  // namespace folearn
