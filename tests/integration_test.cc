// End-to-end integration tests: the full pipelines a user of the library
// runs — generate → label → learn → serialise → restore → PAC-evaluate,
// relational DB → encode → learn → explain, and model checking with and
// without the learning-oracle reduction, all cross-checked against each
// other.

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/encoding.h"
#include "fo/parser.h"
#include "fo/printer.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "learn/erm.h"
#include "learn/hardness.h"
#include "learn/model_io.h"
#include "learn/nd_learner.h"
#include "learn/pac.h"
#include "learn/sublinear.h"
#include "mc/bottom_up.h"
#include "mc/evaluator.h"
#include "util/rng.h"

namespace folearn {
namespace {

// Pipeline 1: realisable learning, serialisation, PAC evaluation.
TEST(Integration, LearnSerializeGeneralize) {
  Rng rng(7001);
  Graph g = MakeCaterpillar(20, 2);
  AddRandomColors(g, {"Flagged"}, 0.2, rng);
  FormulaRef target =
      MustParseFormula("exists z. (E(x1, z) & Flagged(z))");

  // Draw training data from the distribution (realisable, noise-free).
  auto distribution = MakeQueryDistribution(g, target, QueryVars(1), 1, 0.0);
  TrainingSet train = DrawSample(*distribution, 150, rng);

  // Learn, materialise, serialise, restore.
  ErmResult learned = TypeMajorityErm(g, train, {}, {1, 2});
  EXPECT_EQ(learned.training_error, 0.0);
  Hypothesis explicit_h = learned.hypothesis.ToExplicit();
  std::optional<Hypothesis> restored =
      HypothesisFromText(HypothesisToText(explicit_h));
  ASSERT_TRUE(restored.has_value());

  // The restored model generalises.
  double generalization = EstimateGeneralizationError(
      [&](std::span<const Vertex> tuple) {
        return restored->Classify(g, tuple);
      },
      *distribution, 800, rng);
  EXPECT_LE(generalization, 0.05);
}

// Pipeline 2: graph round-trips through text I/O and the learners agree
// before/after.
TEST(Integration, GraphSerializationPreservesLearning) {
  Rng rng(7002);
  Graph g = MakeBoundedDegree(40, 4, 60, rng);
  AddRandomColors(g, {"Red"}, 0.3, rng);
  std::optional<Graph> restored = FromText(ToText(g));
  ASSERT_TRUE(restored.has_value());

  TrainingSet examples;
  for (Vertex v = 0; v < g.order(); ++v) {
    examples.push_back({{v}, g.Degree(v) >= 2});
  }
  ErmResult original = TypeMajorityErm(g, examples, {}, {1, 1});
  ErmResult reloaded = TypeMajorityErm(*restored, examples, {}, {1, 1});
  EXPECT_EQ(original.training_error, reloaded.training_error);
}

// Pipeline 3: the three parameter-search learners agree on the optimum
// for a parameter-demanding workload.
TEST(Integration, ThreeLearnersAgreeOnTwoHubs) {
  Graph g = DisjointCopies(MakeStar(10), 2);
  TrainingSet examples;
  for (Vertex v = 1; v <= 10; ++v) examples.push_back({{v}, true});
  for (Vertex v = 12; v <= 21; ++v) examples.push_back({{v}, false});

  ErmOptions options{1, 1};
  ErmResult brute = BruteForceErm(g, examples, 1, options);
  SublinearErmResult sub = SublinearErm(g, examples, 1, options);
  NdLearnerOptions nd_options;
  nd_options.rank = 1;
  nd_options.radius = 1;
  NdLearnerResult nd = LearnNowhereDense(g, examples, nd_options);

  EXPECT_EQ(brute.training_error, 0.0);
  EXPECT_EQ(sub.erm.training_error, 0.0);
  EXPECT_EQ(nd.erm.training_error, 0.0);
}

// Pipeline 4: relational database → encoding → learning → the learned
// classifier equals the intended relational query on all elements.
TEST(Integration, DatabaseLearningMatchesIntendedQuery) {
  Rng rng(7003);
  Schema schema;
  schema.AddRelation("Follows", 2);
  schema.AddRelation("Bot", 1);
  Database db(schema, 30);
  for (int i = 0; i < 30; i += 4) db.AddTuple("Bot", {i});
  for (int i = 0; i < 60; ++i) {
    int a = static_cast<int>(rng.UniformIndex(30));
    int b = static_cast<int>(rng.UniformIndex(30));
    if (a != b) db.AddTuple("Follows", {a, b});
  }
  EncodedDatabase encoded = EncodeDatabase(db);

  // Intended: x follows someone — rank 2 over the incidence encoding
  // (x — Pos_0 vertex — Follows tuple vertex, all within radius 2).
  FormulaRef intended =
      ExistsElem("b", RelationAtom("Follows", {"x1", "b"}));
  TrainingSet examples;
  std::string vars[] = {"x1"};
  for (int e = 0; e < db.domain_size(); ++e) {
    Vertex v = encoded.VertexOf(e);
    Vertex tuple[] = {v};
    examples.push_back(
        {{v}, EvaluateQuery(encoded.graph, intended, vars, tuple)});
  }
  ErmResult learned = TypeMajorityErm(encoded.graph, examples, {}, {2, 2});
  EXPECT_EQ(learned.training_error, 0.0);
}

// Pipeline 5: query answering via bottom-up MC matches labelling via the
// recursive evaluator, and the ERM learner reproduces the answer set.
TEST(Integration, QueryAnsweringAndLearningAgree) {
  Rng rng(7004);
  Graph g = MakeRandomTree(35, rng);
  AddRandomColors(g, {"Red"}, 0.35, rng);
  FormulaRef query = MustParseFormula("exists z. (E(x1, z) & Red(z))");

  // Answer set via bottom-up evaluation.
  std::vector<std::vector<Vertex>> answers = AnswerQuery(g, query, {"x1"});
  std::set<Vertex> answer_set;
  for (const auto& row : answers) answer_set.insert(row[0]);

  // Labels via the recursive evaluator.
  TrainingSet examples =
      LabelByQuery(g, query, QueryVars(1), AllTuples(g.order(), 1));
  for (const LabeledExample& example : examples) {
    EXPECT_EQ(example.label, answer_set.count(example.tuple[0]) > 0);
  }

  // The learner reproduces the answer set exactly.
  ErmResult learned = TypeMajorityErm(g, examples, {}, {1, 2});
  EXPECT_EQ(learned.training_error, 0.0);
  for (Vertex v = 0; v < g.order(); ++v) {
    Vertex tuple[] = {v};
    EXPECT_EQ(learned.hypothesis.Classify(g, tuple),
              answer_set.count(v) > 0);
  }
}

// Pipeline 6: Theorem 1 round trip — a sentence produced from a LEARNED
// hypothesis is model-checked through the ERM oracle.
TEST(Integration, LearnedFormulaModelCheckedViaOracle) {
  Rng rng(7005);
  Graph g = MakeRandomTree(9, rng);
  AddRandomColors(g, {"Red"}, 0.4, rng);
  TrainingSet examples =
      LabelByQuery(g, MustParseFormula("Red(x1)"), QueryVars(1),
                   AllTuples(g.order(), 1));
  ErmResult learned = TypeMajorityErm(g, examples, {}, {1, 1});
  Hypothesis h = learned.hypothesis.ToExplicit();
  // "Some vertex satisfies the learned hypothesis."
  FormulaRef sentence = Formula::Exists("x1", h.formula);
  ASSERT_TRUE(sentence->free_variables().empty());
  TypeErmOracle oracle;
  bool via_oracle = ModelCheckViaErm(g, sentence, oracle);
  bool direct = EvaluateSentence(g, sentence);
  EXPECT_EQ(via_oracle, direct);
}

}  // namespace
}  // namespace folearn
