#ifndef FOLEARN_TESTS_TEST_HELPERS_H_
#define FOLEARN_TESTS_TEST_HELPERS_H_

#include <string>
#include <vector>

#include "fo/formula.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace folearn {

// Named graph families for parameterised sweeps.
enum class GraphFamily {
  kPath,
  kCycle,
  kRandomTree,
  kCaterpillar,
  kGrid,
  kBoundedDegree,
  kErdosRenyiSparse,
  kStar,
};

inline const char* FamilyName(GraphFamily family) {
  switch (family) {
    case GraphFamily::kPath:
      return "path";
    case GraphFamily::kCycle:
      return "cycle";
    case GraphFamily::kRandomTree:
      return "random_tree";
    case GraphFamily::kCaterpillar:
      return "caterpillar";
    case GraphFamily::kGrid:
      return "grid";
    case GraphFamily::kBoundedDegree:
      return "bounded_degree";
    case GraphFamily::kErdosRenyiSparse:
      return "er_sparse";
    case GraphFamily::kStar:
      return "star";
  }
  return "?";
}

// Builds an n-ish vertex member of the family.
inline Graph MakeFamilyGraph(GraphFamily family, int n, Rng& rng) {
  switch (family) {
    case GraphFamily::kPath:
      return MakePath(n);
    case GraphFamily::kCycle:
      return MakeCycle(std::max(n, 3));
    case GraphFamily::kRandomTree:
      return MakeRandomTree(n, rng);
    case GraphFamily::kCaterpillar:
      return MakeCaterpillar(std::max(n / 3, 1), 2);
    case GraphFamily::kGrid: {
      int side = 1;
      while (side * side < n) ++side;
      return MakeGrid(side, side);
    }
    case GraphFamily::kBoundedDegree:
      return MakeBoundedDegree(std::max(n, 2), 4, 3 * n / 2, rng);
    case GraphFamily::kErdosRenyiSparse:
      return MakeErdosRenyi(n, 2.0 / std::max(n, 2), rng);
    case GraphFamily::kStar:
      return MakeStar(std::max(n - 1, 1));
  }
  return Graph(0);
}

// Uniform random formula over `vars` and `colors`, with at most
// `quantifier_budget` nested quantifiers; exercised by round-trip and
// evaluator-equivalence property tests. May return any connective shape,
// including counting quantifiers when `allow_counting`.
inline FormulaRef RandomFormula(Rng& rng, std::vector<std::string> vars,
                                const std::vector<std::string>& colors,
                                int quantifier_budget, int depth,
                                bool allow_counting = false) {
  // Atom probability grows as depth shrinks.
  const bool make_atom = depth <= 0 || rng.Bernoulli(0.35);
  if (make_atom) {
    int choice = static_cast<int>(rng.UniformIndex(4));
    if (choice == 0 && !colors.empty() && !vars.empty()) {
      return Formula::Color(rng.Choose(colors), rng.Choose(vars));
    }
    if (choice <= 1 && vars.size() >= 2) {
      const std::string& a = rng.Choose(vars);
      const std::string& b = rng.Choose(vars);
      return rng.Bernoulli(0.5) ? Formula::Edge(a, b) : Formula::Equals(a, b);
    }
    return rng.Bernoulli(0.5) ? Formula::True() : Formula::False();
  }
  int choice = static_cast<int>(rng.UniformIndex(quantifier_budget > 0 ? 5 : 3));
  switch (choice) {
    case 0:
      return Formula::Not(RandomFormula(rng, vars, colors, quantifier_budget,
                                        depth - 1, allow_counting));
    case 1:
      return Formula::And(
          RandomFormula(rng, vars, colors, quantifier_budget, depth - 1,
                        allow_counting),
          RandomFormula(rng, vars, colors, quantifier_budget, depth - 1,
                        allow_counting));
    case 2:
      return Formula::Or(
          RandomFormula(rng, vars, colors, quantifier_budget, depth - 1,
                        allow_counting),
          RandomFormula(rng, vars, colors, quantifier_budget, depth - 1,
                        allow_counting));
    default: {
      std::string fresh = "q" + std::to_string(quantifier_budget);
      std::vector<std::string> extended = vars;
      extended.push_back(fresh);
      FormulaRef body = RandomFormula(rng, extended, colors,
                                      quantifier_budget - 1, depth - 1,
                                      allow_counting);
      if (allow_counting && rng.Bernoulli(0.3)) {
        return Formula::CountExists(2 + static_cast<int>(rng.UniformIndex(2)),
                                    fresh, std::move(body));
      }
      return rng.Bernoulli(0.5) ? Formula::Exists(fresh, std::move(body))
                                : Formula::Forall(fresh, std::move(body));
    }
  }
}

}  // namespace folearn

#endif  // FOLEARN_TESTS_TEST_HELPERS_H_
