#include <gtest/gtest.h>

#include "fo/parser.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "learn/erm.h"
#include "learn/nd_learner.h"
#include "util/rng.h"

namespace folearn {
namespace {

TEST(NdLearnerOptions, RadiiMatchPaperFormulas) {
  NdLearnerOptions options;
  options.rank = 1;      // r(1) = 3
  options.ell_star = 1;  // R = 3^0 · (k+2)(2r+1)
  EXPECT_EQ(options.EffectiveRadius(), 3);
  EXPECT_EQ(options.GameRadius(/*k=*/1), 21);
  options.ell_star = 2;
  EXPECT_EQ(options.GameRadius(1), 63);
  options.radius = 1;
  EXPECT_EQ(options.GameRadius(2), 36);  // 3 · (4·3)
}

TEST(NdLearner, NoConflictsLearnsWithoutParameters) {
  Graph g = MakePath(12);
  AddPeriodicColor(g, "Red", 2, 0);
  TrainingSet examples = LabelByQuery(
      g, MustParseFormula("Red(x1)"), QueryVars(1), AllTuples(g.order(), 1));
  NdLearnerOptions options;
  options.rank = 1;
  options.radius = 1;
  NdLearnerResult result = LearnNowhereDense(g, examples, options);
  EXPECT_EQ(result.erm.training_error, 0.0);
  EXPECT_TRUE(result.parameters.empty());
}

TEST(NdLearner, EmptyExamplesTrivial) {
  Graph g = MakePath(3);
  NdLearnerResult result = LearnNowhereDense(g, {}, {});
  EXPECT_EQ(result.erm.training_error, 0.0);
}

// The canonical parameter-demanding workload: two disjoint stars, positives
// near one hub — indistinguishable without parameters, separable with one.
TEST(NdLearner, TwoStarsNeedParameter) {
  Graph g = DisjointCopies(MakeStar(8), 2);  // hubs 0 and 9
  TrainingSet examples;
  for (Vertex v = 1; v <= 8; ++v) examples.push_back({{v}, true});
  for (Vertex v = 10; v <= 17; ++v) examples.push_back({{v}, false});
  NdLearnerOptions options;
  options.rank = 1;
  options.radius = 1;
  options.epsilon = 0.25;
  NdLearnerResult result = LearnNowhereDense(g, examples, options);
  EXPECT_EQ(result.erm.training_error, 0.0);
  EXPECT_FALSE(result.parameters.empty());
  ASSERT_FALSE(result.steps.empty());
  EXPECT_GT(result.steps[0].critical, 0);
  EXPECT_GT(result.steps[0].x_size, 0);
}

// The learner's guarantee (err ≤ ε* + ε) cross-checked against the
// brute-force optimum on random trees with a hidden 1-parameter target.
TEST(NdLearner, WithinEpsilonOfBruteForceOnTrees) {
  Rng rng(55);
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = MakeRandomTree(30, rng);
    AddRandomColors(g, {"Red"}, 0.3, rng);
    // Hidden target: x adjacent to the (random) special vertex w*.
    Vertex w_star = static_cast<Vertex>(rng.UniformIndex(g.order()));
    TrainingSet examples;
    Vertex source[] = {w_star};
    std::vector<int> dist = BfsDistances(g, source);
    for (Vertex v = 0; v < g.order(); ++v) {
      examples.push_back({{v}, dist[v] != kUnreachable && dist[v] <= 1});
    }
    NdLearnerOptions options;
    options.rank = 1;
    options.radius = 1;
    options.epsilon = 0.2;
    NdLearnerResult learned = LearnNowhereDense(g, examples, options);
    ErmResult brute = BruteForceErm(g, examples, 1, {1, 1});
    EXPECT_LE(learned.erm.training_error,
              brute.training_error + options.epsilon + 1e-9)
        << "trial=" << trial;
  }
}

TEST(NdLearner, AgnosticNoiseDoesNotBreakGuarantee) {
  Rng rng(77);
  Graph g = MakeCaterpillar(10, 2);
  TrainingSet examples;
  // Noisy version of "x is on the spine" (degree ≥ 2 ⇔ spine here).
  for (Vertex v = 0; v < g.order(); ++v) {
    bool label = g.Degree(v) >= 2;
    if (rng.Bernoulli(0.1)) label = !label;
    examples.push_back({{v}, label});
  }
  NdLearnerOptions options;
  options.rank = 1;
  options.radius = 1;
  options.epsilon = 0.25;
  NdLearnerResult learned = LearnNowhereDense(g, examples, options);
  ErmResult brute = BruteForceErm(g, examples, 1, {1, 1});
  EXPECT_LE(learned.erm.training_error,
            brute.training_error + options.epsilon + 1e-9);
}

TEST(NdLearner, PairExamplesWithParameter) {
  // k = 2 concept over a path: "x1 and x2 on the same side of the marked
  // centre" is not local-type definable without the centre as parameter
  // when the path is long enough; with the parameter it separates.
  Graph g = MakePath(13);  // centre = 6
  TrainingSet examples;
  Rng rng(101);
  std::vector<std::vector<Vertex>> tuples = SampleTuples(g.order(), 2, 60,
                                                         rng);
  for (const std::vector<Vertex>& t : tuples) {
    bool same_side = (t[0] < 6) == (t[1] < 6) && t[0] != 6 && t[1] != 6;
    examples.push_back({t, same_side});
  }
  NdLearnerOptions options;
  options.rank = 1;
  options.radius = 1;
  options.epsilon = 0.3;
  options.final_radius = 13;  // the whole path fits in the window
  NdLearnerResult learned = LearnNowhereDense(g, examples, options);
  // Compare against brute force with the same final hypothesis class.
  ErmResult brute = BruteForceErm(g, examples, 1, {1, 13});
  EXPECT_LE(learned.erm.training_error,
            brute.training_error + options.epsilon + 1e-9);
}

TEST(NdLearner, MultiStepRecursionAccumulatesParameters) {
  // A two-level broom: root 0 joined to 5 hubs, each hub with 6 leaves.
  // All leaves share one local type; positives = leaves of hubs 1 and 2.
  // The best ONE-parameter hypothesis must sacrifice one positive hub
  // (ε* > 0), and because all conflicts stay inside the root's
  // neighbourhood, the contraction recursion keeps running and collects a
  // parameter per step — letting the learner land BELOW ε*, which the
  // (L,Q) relaxation explicitly allows.
  Graph g(6);  // root 0, hubs 1..5
  for (Vertex hub = 1; hub <= 5; ++hub) g.AddEdge(0, hub);
  std::vector<std::vector<Vertex>> leaves(6);
  for (Vertex hub = 1; hub <= 5; ++hub) {
    for (int i = 0; i < 6; ++i) {
      Vertex leaf = g.AddVertex();
      g.AddEdge(hub, leaf);
      leaves[hub].push_back(leaf);
    }
  }
  TrainingSet examples;
  for (Vertex hub = 1; hub <= 5; ++hub) {
    for (Vertex leaf : leaves[hub]) {
      examples.push_back({{leaf}, hub <= 2});
    }
  }
  NdLearnerOptions options;
  options.rank = 1;
  options.radius = 1;
  options.ell_star = 1;
  options.epsilon = 0.2;
  auto splitter = MakeGreedyDegreeSplitter();
  options.splitter = splitter.get();
  NdLearnerResult result = LearnNowhereDense(g, examples, options);

  ErmResult brute1 = BruteForceErm(g, examples, 1, {1, 1});
  EXPECT_GT(brute1.training_error, 0.0) << "one parameter must not suffice";
  // Paper guarantee: within ε of the one-parameter optimum…
  EXPECT_LE(result.erm.training_error,
            brute1.training_error + options.epsilon + 1e-9);
  // …and the multi-step parameters actually beat it outright here.
  bool deep_step_with_conflicts = false;
  for (const NdStepStats& step : result.steps) {
    if (step.step >= 1 && step.critical > 0) deep_step_with_conflicts = true;
  }
  EXPECT_TRUE(deep_step_with_conflicts);
  EXPECT_GE(result.parameters.size(), 2u);
  EXPECT_EQ(result.erm.training_error, 0.0);
}

TEST(NdLearner, StatsArePopulated) {
  Graph g = DisjointCopies(MakeStar(5), 2);
  TrainingSet examples;
  for (Vertex v = 1; v <= 5; ++v) examples.push_back({{v}, true});
  for (Vertex v = 7; v <= 11; ++v) examples.push_back({{v}, false});
  NdLearnerOptions options;
  options.rank = 1;
  options.radius = 1;
  NdLearnerResult result = LearnNowhereDense(g, examples, options);
  EXPECT_GT(result.candidates_evaluated, 0);
  ASSERT_FALSE(result.steps.empty());
  EXPECT_EQ(result.steps[0].examples, 10);
  EXPECT_EQ(result.steps[0].graph_order, 12);
}

TEST(NdLearner, HypothesisClassifiesConsistently) {
  Graph g = DisjointCopies(MakeStar(4), 2);
  TrainingSet examples;
  for (Vertex v = 1; v <= 4; ++v) examples.push_back({{v}, true});
  for (Vertex v = 6; v <= 9; ++v) examples.push_back({{v}, false});
  NdLearnerOptions options;
  options.rank = 1;
  options.radius = 1;
  NdLearnerResult result = LearnNowhereDense(g, examples, options);
  // The reported error must match re-evaluating the hypothesis.
  EXPECT_DOUBLE_EQ(result.erm.training_error,
                   result.erm.hypothesis.Error(g, examples));
}

}  // namespace
}  // namespace folearn
