#!/bin/sh
# Chaos test of folearnd durability: kill the daemon at every journal
# write point (--crash-at-journal-write), and kill -9 it at pseudo-random
# mid-request instants, restarting each time and asserting that
#   * every acknowledged session and model is recovered byte-identically,
#   * retried learns are idempotent (request-id dedup: zero duplicate
#     side effects across forced restarts),
#   * the retrying client completes its workload across a restart, and
#   * over-long socket paths are rejected with exit 64 by both binaries.
# Invoked with the directory holding the folearnd / folearn_client /
# folearn_cli binaries as $1.
set -eu

TOOLS="$1"
DIR="$(mktemp -d)"
SOCK="$DIR/folearnd.sock"
STATE="$DIR/state"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

client() {
  "$TOOLS/folearn_client" --socket "$SOCK" "$@"
}

# Starts folearnd with the given extra flags; waits for the socket. A
# crashed daemon leaves its socket file behind — remove it first so the
# readiness wait observes the *new* daemon's bind, not the stale file.
start_daemon() {
  rm -f "$SOCK"
  "$TOOLS/folearnd" --socket "$SOCK" --state-dir "$STATE" "$@" \
      2> "$DIR/daemon.log" &
  DAEMON_PID=$!
  tries=0
  while [ ! -S "$SOCK" ]; do
    tries=$((tries + 1))
    [ "$tries" -lt 100 ] || { echo "daemon never bound $SOCK" >&2; exit 1; }
    kill -0 "$DAEMON_PID" 2>/dev/null || {
      echo "daemon died at startup:" >&2; cat "$DIR/daemon.log" >&2; exit 1
    }
    sleep 0.1
  done
}

stop_daemon_clean() {
  kill "$DAEMON_PID"
  rc=0
  wait "$DAEMON_PID" || rc=$?
  DAEMON_PID=""
  [ "$rc" -eq 0 ] || {
    echo "daemon exit $rc:" >&2; cat "$DIR/daemon.log" >&2; exit 1
  }
}

# Problem setup: a coloured random tree, an "is Red" dataset, and its
# label-flipped twin (so the workload registers two distinct models).
"$TOOLS/folearn_cli" generate --family tree --n 30 --seed 21 \
    --color Red:0.3 --out "$DIR/g.txt"
reds=$(grep '^color Red' "$DIR/g.txt" | cut -d' ' -f3-)
{
  echo "examples 1"
  v=0
  while [ "$v" -lt 30 ]; do
    label="-"
    for r in $reds; do
      [ "$r" = "$v" ] && label="+"
    done
    echo "$label $v"
    v=$((v + 1))
  done
} > "$DIR/d.txt"
sed 'y/+-/-+/' "$DIR/d.txt" > "$DIR/d2.txt"

# The four-step workload every chaos iteration replays:
#   load-graph → learn(rid-1, d) → learn(rid-2, d2).
# Step outputs land in $DIR; a step whose client call fails (daemon died
# mid-request) leaves its marker file absent — only ACKED steps are
# verified after restart.

# --- Reference run (no fault injection): the expected model bytes. -----
rm -rf "$STATE"
start_daemon
client load-graph --graph-file "$DIR/g.txt" > "$DIR/load.out"
session=$(sed -n 's/^session: //p' "$DIR/load.out")
client learn --session "$session" --data-file "$DIR/d.txt" \
    --rank 1 --radius 1 --request-id rid-1 --out "$DIR/m1.ref" > /dev/null
client learn --session "$session" --data-file "$DIR/d2.txt" \
    --rank 1 --radius 1 --request-id rid-2 --out "$DIR/m2.ref" > /dev/null
grep -q '^hypothesis ' "$DIR/m1.ref"
grep -q '^hypothesis ' "$DIR/m2.ref"
cmp -s "$DIR/m1.ref" "$DIR/m2.ref" && {
  echo "reference models unexpectedly identical" >&2; exit 1; }
stop_daemon_clean

# --- Phase A: kill at every journal-write point. -----------------------
# N sweeps upward until the daemon survives the whole workload; each
# crashed run restarts on the same state dir and must serve every ACKED
# model byte-identically, and re-running the workload with the same
# request-ids must produce zero duplicate registrations.
N=1
while :; do
  [ "$N" -le 12 ] || { echo "journal-write sweep never ended" >&2; exit 1; }
  rm -rf "$STATE"
  rm -f "$DIR/ack.session" "$DIR/ack.m1" "$DIR/ack.m2"
  start_daemon --crash-at-journal-write "$N"

  rc=0
  client load-graph --graph-file "$DIR/g.txt" > "$DIR/load.out" || rc=$?
  if [ "$rc" -eq 0 ]; then
    sed -n 's/^session: //p' "$DIR/load.out" > "$DIR/ack.session"
    rc=0
    client learn --session "$(cat "$DIR/ack.session")" \
        --data-file "$DIR/d.txt" --rank 1 --radius 1 \
        --request-id rid-1 --out "$DIR/m1.ack" > /dev/null || rc=$?
    [ "$rc" -eq 0 ] && mv "$DIR/m1.ack" "$DIR/ack.m1"
    rc=0
    client learn --session "$(cat "$DIR/ack.session")" \
        --data-file "$DIR/d2.txt" --rank 1 --radius 1 \
        --request-id rid-2 --out "$DIR/m2.ack" > /dev/null || rc=$?
    [ "$rc" -eq 0 ] && mv "$DIR/m2.ack" "$DIR/ack.m2"
  fi

  if [ -f "$DIR/ack.m2" ]; then
    # Workload completed: this N is past the last journal write. The
    # daemon must still be alive and shut down cleanly.
    kill -0 "$DAEMON_PID" 2>/dev/null || {
      echo "daemon dead after a completed workload (N=$N)" >&2; exit 1; }
    stop_daemon_clean
    break
  fi
  # The daemon must have died from the injected crash (exit 70), not
  # anything else.
  rc=0
  wait "$DAEMON_PID" || rc=$?
  DAEMON_PID=""
  [ "$rc" -eq 70 ] || {
    echo "N=$N: expected injected crash (70), got $rc" >&2
    cat "$DIR/daemon.log" >&2; exit 1
  }

  # Restart on the same journal; every ACKED artefact must be served
  # byte-identically, and replaying the workload must dedup, not
  # duplicate.
  start_daemon
  if [ -f "$DIR/ack.session" ]; then
    session=$(cat "$DIR/ack.session")
    if [ -f "$DIR/ack.m1" ]; then
      client get-model --session "$session" --model-id 1 \
          --out "$DIR/m1.rec" > /dev/null
      cmp "$DIR/ack.m1" "$DIR/m1.rec" || {
        echo "N=$N: recovered model 1 differs" >&2; exit 1; }
    fi
    # Replay both learns with the original request-ids: the result must
    # match the reference bytes whether it was deduped or re-learned.
    client learn --session "$session" --data-file "$DIR/d.txt" \
        --rank 1 --radius 1 --request-id rid-1 \
        --out "$DIR/m1.replay" > "$DIR/replay1.out"
    cmp "$DIR/m1.ref" "$DIR/m1.replay" || {
      echo "N=$N: replayed model 1 differs from reference" >&2; exit 1; }
    if [ -f "$DIR/ack.m1" ]; then
      grep -q '^deduped: 1$' "$DIR/replay1.out" || {
        echo "N=$N: acked learn rid-1 was not deduped" >&2; exit 1; }
    fi
    client learn --session "$session" --data-file "$DIR/d2.txt" \
        --rank 1 --radius 1 --request-id rid-2 \
        --out "$DIR/m2.replay" > /dev/null
    cmp "$DIR/m2.ref" "$DIR/m2.replay" || {
      echo "N=$N: replayed model 2 differs from reference" >&2; exit 1; }
    # Zero duplicate side effects: exactly the two distinct models.
    client list-models --session "$session" > "$DIR/list.out"
    grep -q '^count: 2$' "$DIR/list.out" || {
      echo "N=$N: duplicate models after replay:" >&2
      cat "$DIR/list.out" >&2; exit 1
    }
  fi
  stop_daemon_clean
  N=$((N + 1))
done
echo "phase A passed: $((N - 1)) crashed journal-write points recovered"

# --- Phase B: kill -9 at pseudo-random mid-request instants. -----------
# A retrying client runs the learn workload while the daemon is killed
# under it and restarted; the client must complete, and the journal must
# end with exactly one model (every learn carries the same data).
rm -rf "$STATE"
start_daemon
client load-graph --graph-file "$DIR/g.txt" > "$DIR/load.out"
session=$(sed -n 's/^session: //p' "$DIR/load.out")
i=1
while [ "$i" -le 5 ]; do
  rc=0
  client learn --session "$session" --data-file "$DIR/d.txt" \
      --rank 1 --radius 1 --request-id "rid-b$i" \
      --retries 100 --backoff-ms 20 \
      --out "$DIR/mb.$i" > /dev/null 2> "$DIR/client.$i.log" &
  CLIENT_PID=$!
  # Deterministic pseudo-random kill delay in [0, 200) ms.
  delay_ms=$(( (i * 67) % 200 ))
  sleep "$(printf '0.%03d' "$delay_ms")"
  kill -9 "$DAEMON_PID" 2>/dev/null || true
  wait "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=""
  start_daemon
  wait "$CLIENT_PID" || rc=$?
  [ "$rc" -eq 0 ] || {
    echo "iteration $i: retrying client failed ($rc)" >&2
    cat "$DIR/client.$i.log" >&2; exit 1
  }
  cmp "$DIR/m1.ref" "$DIR/mb.$i" || {
    echo "iteration $i: model differs from reference" >&2; exit 1; }
  i=$((i + 1))
done
client list-models --session "$session" > "$DIR/list.out"
grep -q '^count: 1$' "$DIR/list.out" || {
  echo "duplicate side effects after mid-request kills:" >&2
  cat "$DIR/list.out" >&2; exit 1
}
stop_daemon_clean
echo "phase B passed: retrying client survived 5 mid-request kills"

# --- Phase C: over-long socket paths exit 64 in both binaries. ---------
LONG_SOCK="$DIR/$(printf 'x%.0s' $(seq 1 200)).sock"
rc=0
"$TOOLS/folearnd" --socket "$LONG_SOCK" 2> /dev/null || rc=$?
[ "$rc" -eq 64 ] || { echo "folearnd long path: got $rc" >&2; exit 1; }
rc=0
"$TOOLS/folearn_client" --socket "$LONG_SOCK" ping 2> /dev/null || rc=$?
[ "$rc" -eq 64 ] || { echo "folearn_client long path: got $rc" >&2; exit 1; }

echo "server chaos test passed"
