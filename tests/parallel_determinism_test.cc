// Determinism of the parallel sweeps: BruteForceErm, EnumerationErm, and
// the nd-learner must return identical hypotheses, training errors,
// diagnostics, and serialised model bytes for --threads 1/2/8 — on
// complete runs, on early-stopped (zero-error) runs, and under injected
// governor trips at fixed checkpoints.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fo/parser.h"
#include "fo/printer.h"
#include "graph/generators.h"
#include "learn/dataset.h"
#include "learn/erm.h"
#include "learn/model_io.h"
#include "learn/nd_learner.h"
#include "util/governor.h"
#include "util/rng.h"

namespace folearn {
namespace {

const int kThreadCounts[] = {1, 2, 8};

std::string ModelText(const ErmResult& result) {
  return HypothesisToText(result.hypothesis.ToExplicit());
}

// Noisy workload: no zero-error candidate, so scans run to their limit.
struct NoisyWorkload {
  Graph graph{0};
  TrainingSet examples;

  NoisyWorkload() {
    Rng rng(321);
    graph = MakeRandomTree(18, rng);
    AddRandomColors(graph, {"Red"}, 0.4, rng);
    std::vector<std::vector<Vertex>> tuples =
        SampleTuples(graph.order(), 1, 3 * graph.order(), rng);
    examples = LabelByQuery(
        graph, MustParseFormula("exists z. (E(x1, z) & Red(z))"),
        QueryVars(1), tuples);
    FlipLabels(examples, 0.3, rng);
  }
};

// Realisable workload: labels come from E(x1, y1) with the parameter
// y1 = 3 substituted, so some candidate reaches zero error and the scan
// exercises the early-stop (first-hit) path.
struct RealisableWorkload {
  Graph graph{0};
  TrainingSet examples;

  RealisableWorkload() {
    Rng rng(99);
    graph = MakeRandomTree(14, rng);
    AddRandomColors(graph, {"Red"}, 0.5, rng);
    std::vector<std::vector<Vertex>> pairs;
    for (const auto& tuple :
         SampleTuples(graph.order(), 1, 2 * graph.order(), rng)) {
      pairs.push_back({tuple[0], Vertex{3}});
    }
    const std::vector<std::string> vars = {"x1", "y1"};
    TrainingSet labelled =
        LabelByQuery(graph, MustParseFormula("E(x1, y1)"), vars, pairs);
    for (const auto& example : labelled) {
      examples.push_back({{example.tuple[0]}, example.label});
    }
  }
};

void ExpectSameErm(const ErmResult& base, const ErmResult& other,
                   const std::string& label) {
  EXPECT_EQ(base.training_error, other.training_error) << label;
  EXPECT_EQ(base.status, other.status) << label;
  EXPECT_EQ(base.parameter_tuples_tried, other.parameter_tuples_tried)
      << label;
  EXPECT_EQ(base.hypothesis.parameters, other.hypothesis.parameters) << label;
  EXPECT_EQ(base.hypothesis.accepted, other.hypothesis.accepted) << label;
  EXPECT_EQ(ModelText(base), ModelText(other)) << label;
}

TEST(ParallelDeterminism, BruteForceCompleteScan) {
  NoisyWorkload w;
  ErmOptions options;
  options.threads = 1;
  ErmResult base = BruteForceErm(w.graph, w.examples, 1, options, nullptr,
                                 /*early_stop=*/false);
  EXPECT_EQ(base.parameter_tuples_tried, w.graph.order());
  for (int threads : kThreadCounts) {
    ErmOptions parallel = options;
    parallel.threads = threads;
    ErmResult result = BruteForceErm(w.graph, w.examples, 1, parallel,
                                     nullptr, /*early_stop=*/false);
    ExpectSameErm(base, result, "threads=" + std::to_string(threads));
  }
}

TEST(ParallelDeterminism, BruteForceEarlyStopOnZeroError) {
  RealisableWorkload w;
  ErmOptions options;
  options.threads = 1;
  ErmResult base = BruteForceErm(w.graph, w.examples, 1, options);
  ASSERT_EQ(base.training_error, 0.0);
  for (int threads : kThreadCounts) {
    ErmOptions parallel = options;
    parallel.threads = threads;
    ErmResult result = BruteForceErm(w.graph, w.examples, 1, parallel);
    ExpectSameErm(base, result, "threads=" + std::to_string(threads));
  }
}

TEST(ParallelDeterminism, BruteForceUnderInjectedTrips) {
  NoisyWorkload w;
  // Trip points spanning "before anything", mid-candidate, between
  // candidates, and beyond the scan.
  for (int64_t trip : {1, 2, 17, 40, 41, 100, 1000}) {
    ErmResult base;
    std::string base_text;
    bool first = true;
    for (int threads : kThreadCounts) {
      FaultInjector injector(trip);
      ResourceGovernor governor(GovernorLimits{}, nullptr, &injector);
      ErmOptions options;
      options.governor = &governor;
      options.threads = threads;
      ErmResult result = BruteForceErm(w.graph, w.examples, 1, options);
      const std::string label =
          "trip=" + std::to_string(trip) +
          " threads=" + std::to_string(threads);
      // Work accounting must match the sequential scan exactly.
      if (first) {
        base = result;
        base_text = ModelText(base);
        first = false;
        continue;
      }
      ExpectSameErm(base, result, label);
      EXPECT_EQ(ModelText(result), base_text) << label;
    }
  }
}

TEST(ParallelDeterminism, BruteForceWorkBudgetAccountingMatches) {
  NoisyWorkload w;
  for (int64_t budget : {5, 33, 64, 500}) {
    int64_t base_work = -1;
    RunStatus base_status = RunStatus::kComplete;
    for (int threads : kThreadCounts) {
      GovernorLimits limits;
      limits.max_work = budget;
      ResourceGovernor governor(limits);
      ErmOptions options;
      options.governor = &governor;
      options.threads = threads;
      ErmResult result = BruteForceErm(w.graph, w.examples, 1, options);
      const std::string label = "budget=" + std::to_string(budget) +
                                " threads=" + std::to_string(threads);
      EXPECT_EQ(result.status, governor.status()) << label;
      if (base_work < 0) {
        base_work = governor.work_used();
        base_status = governor.status();
        continue;
      }
      EXPECT_EQ(governor.work_used(), base_work) << label;
      EXPECT_EQ(governor.status(), base_status) << label;
    }
  }
}

TEST(ParallelDeterminism, EnumerationErmAcrossThreads) {
  NoisyWorkload w;
  EnumerationOptions enumeration;
  enumeration.colors = {"Red"};
  enumeration.max_quantifier_rank = 1;
  enumeration.max_boolean_depth = 1;
  enumeration.max_count = 600;
  EnumerationErmResult base =
      EnumerationErm(w.graph, w.examples, 0, enumeration, nullptr, 1);
  ASSERT_NE(base.hypothesis.formula, nullptr);
  for (int threads : kThreadCounts) {
    EnumerationErmResult result =
        EnumerationErm(w.graph, w.examples, 0, enumeration, nullptr, threads);
    const std::string label = "threads=" + std::to_string(threads);
    EXPECT_EQ(result.training_error, base.training_error) << label;
    EXPECT_EQ(result.formulas_tried, base.formulas_tried) << label;
    ASSERT_NE(result.hypothesis.formula, nullptr) << label;
    EXPECT_EQ(HypothesisToText(result.hypothesis),
              HypothesisToText(base.hypothesis))
        << label;
  }
}

TEST(ParallelDeterminism, EnumerationErmUnderInjectedTrips) {
  NoisyWorkload w;
  EnumerationOptions enumeration;
  enumeration.colors = {"Red"};
  enumeration.max_quantifier_rank = 1;
  enumeration.max_boolean_depth = 1;
  enumeration.max_count = 600;
  for (int64_t trip : {1, 7, 123}) {
    EnumerationErmResult base;
    bool first = true;
    for (int threads : kThreadCounts) {
      FaultInjector injector(trip);
      ResourceGovernor governor(GovernorLimits{}, nullptr, &injector);
      EnumerationErmResult result = EnumerationErm(
          w.graph, w.examples, 0, enumeration, &governor, threads);
      const std::string label = "trip=" + std::to_string(trip) +
                                " threads=" + std::to_string(threads);
      EXPECT_TRUE(IsInterrupted(result.status)) << label;
      if (first) {
        base = result;
        first = false;
        continue;
      }
      EXPECT_EQ(result.training_error, base.training_error) << label;
      EXPECT_EQ(result.formulas_tried, base.formulas_tried) << label;
      EXPECT_EQ(result.status, base.status) << label;
      if (base.hypothesis.formula != nullptr) {
        ASSERT_NE(result.hypothesis.formula, nullptr) << label;
        EXPECT_EQ(HypothesisToText(result.hypothesis),
                  HypothesisToText(base.hypothesis))
            << label;
      } else {
        EXPECT_EQ(result.hypothesis.formula, nullptr) << label;
      }
    }
  }
}

TEST(ParallelDeterminism, NdLearnerAcrossThreads) {
  NoisyWorkload w;
  NdLearnerOptions base_options;
  base_options.ell_star = 1;
  base_options.rank = 1;
  base_options.radius = 1;
  base_options.threads = 1;
  NdLearnerResult base = LearnNowhereDense(w.graph, w.examples, base_options);
  for (int threads : kThreadCounts) {
    NdLearnerOptions options = base_options;
    options.threads = threads;
    NdLearnerResult result = LearnNowhereDense(w.graph, w.examples, options);
    const std::string label = "threads=" + std::to_string(threads);
    EXPECT_EQ(result.erm.training_error, base.erm.training_error) << label;
    EXPECT_EQ(result.candidates_evaluated, base.candidates_evaluated)
        << label;
    EXPECT_EQ(result.parameters, base.parameters) << label;
    EXPECT_EQ(ModelText(result.erm), ModelText(base.erm)) << label;
  }
}

TEST(ParallelDeterminism, NdLearnerUnderInjectedTrips) {
  NoisyWorkload w;
  for (int64_t trip : {1, 30, 300, 900}) {
    NdLearnerResult base;
    bool first = true;
    for (int threads : kThreadCounts) {
      FaultInjector injector(trip);
      ResourceGovernor governor(GovernorLimits{}, nullptr, &injector);
      NdLearnerOptions options;
      options.ell_star = 1;
      options.rank = 1;
      options.radius = 1;
      options.governor = &governor;
      options.threads = threads;
      NdLearnerResult result = LearnNowhereDense(w.graph, w.examples, options);
      const std::string label = "trip=" + std::to_string(trip) +
                                " threads=" + std::to_string(threads);
      if (first) {
        base = result;
        first = false;
        continue;
      }
      EXPECT_EQ(result.erm.training_error, base.erm.training_error) << label;
      EXPECT_EQ(result.candidates_evaluated, base.candidates_evaluated)
          << label;
      EXPECT_EQ(result.parameters, base.parameters) << label;
      EXPECT_EQ(result.status, base.status) << label;
      EXPECT_EQ(ModelText(result.erm), ModelText(base.erm)) << label;
    }
  }
}

// The ball cache is purely an accelerator: single-threaded ERM with and
// without one must agree bit for bit.
TEST(ParallelDeterminism, BallCacheDoesNotChangeResults) {
  NoisyWorkload w;
  ErmOptions plain;
  ErmResult base = BruteForceErm(w.graph, w.examples, 1, plain);
  BallCache cache(w.graph);
  ErmOptions cached = plain;
  cached.ball_cache = &cache;
  ErmResult result = BruteForceErm(w.graph, w.examples, 1, cached);
  ExpectSameErm(base, result, "ball-cache");
  EXPECT_GT(cache.hits() + cache.misses(), 0);
}

}  // namespace
}  // namespace folearn
