#!/bin/sh
# End-to-end test of the folearn_cli tool: generate → label → learn →
# save → evaluate → model-check (direct and via the Theorem 1 reduction)
# → profile. Invoked by ctest with the CLI path as $1.
set -eu

CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

# 1. Generate a coloured random tree.
"$CLI" generate --family tree --n 40 --seed 11 --color Red:0.3 \
    --out "$DIR/g.txt"
grep -q '^graph 40$' "$DIR/g.txt"

# 2. Build a dataset: label = vertex is Red (read off the graph file).
reds=$(grep '^color Red' "$DIR/g.txt" | cut -d' ' -f3-)
{
  echo "examples 1"
  v=0
  while [ "$v" -lt 40 ]; do
    label="-"
    for r in $reds; do
      [ "$r" = "$v" ] && label="+"
    done
    echo "$label $v"
    v=$((v + 1))
  done
} > "$DIR/d.txt"

# 3. Learn (brute force, then the nowhere-dense learner).
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --rank 1 \
    --radius 1 --out "$DIR/m.txt" 2> "$DIR/learn.log"
grep -q 'training error: 0.0000' "$DIR/learn.log"
grep -q '^hypothesis k 1 ell 0$' "$DIR/m.txt"

"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --rank 1 \
    --radius 1 --learner nd --out "$DIR/m_nd.txt" 2> "$DIR/nd.log"
grep -q 'training error: 0.0000' "$DIR/nd.log"

"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --rank 1 \
    --radius 1 --learner sublinear --out "$DIR/m_sub.txt" 2> "$DIR/sub.log"
grep -q 'training error: 0.0000' "$DIR/sub.log"

# 4. Evaluate the saved model.
"$CLI" eval --graph "$DIR/g.txt" --data "$DIR/d.txt" \
    --model "$DIR/m.txt" | grep -q 'error: 0.0000'

# 5. Model checking, direct and via the learning-oracle reduction, must
#    agree (both say "true": some red vertex exists).
direct=$("$CLI" mc --graph "$DIR/g.txt" --sentence "exists x. Red(x)" || true)
reduced=$("$CLI" mc --graph "$DIR/g.txt" --sentence "exists x. Red(x)" \
    --via-erm 1 2>/dev/null || true)
[ "$direct" = "true" ]
[ "$direct" = "$reduced" ]

# 5b. All three engines agree — the interpreted reference oracle and the
#     compiled tree match the VM default, for both eval and mc; a bad
#     --eval value exits 64.
for engine in interpreted compiled vm; do
  "$CLI" eval --graph "$DIR/g.txt" --data "$DIR/d.txt" \
      --model "$DIR/m.txt" --eval "$engine" | grep -q 'error: 0.0000'
  verdict=$("$CLI" mc --graph "$DIR/g.txt" --sentence "exists x. Red(x)" \
      --eval "$engine" || true)
  [ "$verdict" = "$direct" ]
done
rc=0
"$CLI" mc --graph "$DIR/g.txt" --sentence "exists x. Red(x)" \
    --eval fast 2> "$DIR/badeval.log" || rc=$?
[ "$rc" -eq 64 ]
grep -q "\-\-eval must be 'vm', 'compiled', or 'interpreted'" \
    "$DIR/badeval.log"

# 6. Profile prints the invariants table.
"$CLI" profile --graph "$DIR/g.txt" --radius 2 | grep -q 'degeneracy'

# 7. Flag hygiene: duplicates and unknown flags are rejected (exit 64).
rc=0
"$CLI" learn --graph "$DIR/g.txt" --graph "$DIR/g.txt" \
    --data "$DIR/d.txt" 2> "$DIR/dup.log" || rc=$?
[ "$rc" -eq 64 ]
grep -q "duplicate flag '--graph'" "$DIR/dup.log"

rc=0
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/d.txt" \
    --bogus 1 2> "$DIR/unknown.log" || rc=$?
[ "$rc" -eq 64 ]
grep -q "unknown flag '--bogus' for command 'learn'" "$DIR/unknown.log"

rc=0
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/d.txt" \
    --max-work 0 2> /dev/null || rc=$?
[ "$rc" -eq 64 ]

rc=0
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/d.txt" \
    --max-work abc 2> "$DIR/badnum.log" || rc=$?
[ "$rc" -eq 64 ]
grep -q "invalid value 'abc' for flag '--max-work'" "$DIR/badnum.log"

# 8. Resource limits: a generous work budget completes normally (exit 0);
#    a tiny one degrades gracefully — best-so-far model, exit 3.
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --rank 1 \
    --radius 1 --max-work 100000000 --out "$DIR/m_full.txt" 2> /dev/null
cmp -s "$DIR/m.txt" "$DIR/m_full.txt"

rc=0
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --rank 1 \
    --radius 1 --ell 1 --max-work 25 --out "$DIR/m_cut.txt" \
    2> "$DIR/cut.log" || rc=$?
[ "$rc" -eq 3 ]
grep -q 'resource limit hit (budget-exhausted)' "$DIR/cut.log"
grep -q '^hypothesis ' "$DIR/m_cut.txt"

# Same budget twice: the degraded model is deterministic.
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --rank 1 \
    --radius 1 --ell 1 --max-work 25 --out "$DIR/m_cut2.txt" \
    2> /dev/null || true
cmp -s "$DIR/m_cut.txt" "$DIR/m_cut2.txt"

# mc under a tiny budget refuses to report a truth value (exit 3).
rc=0
out=$("$CLI" mc --graph "$DIR/g.txt" \
    --sentence "forall x. exists y. E(x, y)" --max-work 2 \
    2> /dev/null) || rc=$?
[ "$rc" -eq 3 ]
[ "$out" = "indeterminate" ]

# 9. Input-file failure modes use sysexits codes: missing file 66
#    (EX_NOINPUT), malformed contents 65 (EX_DATAERR) — diagnostics name
#    the path and the offending line, never a crash.
rc=0
"$CLI" learn --graph "$DIR/absent.txt" --data "$DIR/d.txt" \
    2> "$DIR/noinput.log" || rc=$?
[ "$rc" -eq 66 ]
grep -q "absent.txt" "$DIR/noinput.log"

printf 'graph zz\n' > "$DIR/badg.txt"
rc=0
"$CLI" learn --graph "$DIR/badg.txt" --data "$DIR/d.txt" \
    2> "$DIR/badg.log" || rc=$?
[ "$rc" -eq 65 ]
grep -q "badg.txt: line 1:" "$DIR/badg.log"

rc=0
"$CLI" eval --graph "$DIR/g.txt" --data "$DIR/d.txt" \
    --model "$DIR/badg.txt" 2> /dev/null || rc=$?
[ "$rc" -eq 65 ]

# 10. Checkpoint/resume flag matrix. A hard dataset (labels periodic in
#     the vertex id, so no zero-error hypothesis exists and the scan runs
#     all candidate segments) exercises save, crash, and resume.
{
  echo "examples 1"
  v=0
  while [ "$v" -lt 40 ]; do
    if [ $((v % 7)) -lt 3 ]; then echo "+ $v"; else echo "- $v"; fi
    v=$((v + 1))
  done
} > "$DIR/dh.txt"

# Reference run, then a crash-injected checkpointing run (exit 70), then
# a resume that must reproduce the reference model byte-for-byte.
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/dh.txt" --rank 1 \
    --radius 1 --ell 2 --out "$DIR/ck_ref.model" 2> "$DIR/ck_ref.log"
rc=0
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/dh.txt" --rank 1 \
    --radius 1 --ell 2 --checkpoint "$DIR/c.ckpt" --crash-at-save 2 \
    --out "$DIR/ck_crash.model" 2> "$DIR/crash.log" || rc=$?
[ "$rc" -eq 70 ]
grep -q 'crash injection' "$DIR/crash.log"
grep -q '^folearn-checkpoint v1$' "$DIR/c.ckpt"

"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/dh.txt" --rank 1 \
    --radius 1 --ell 2 --resume "$DIR/c.ckpt" \
    --out "$DIR/ck_res.model" 2> "$DIR/ck_res.log"
cmp -s "$DIR/ck_ref.model" "$DIR/ck_res.model"
cmp -s "$DIR/ck_ref.log" "$DIR/ck_res.log"

# Resuming with a different thread count changes nothing.
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/dh.txt" --rank 1 \
    --radius 1 --ell 2 --resume "$DIR/c.ckpt" --threads 4 \
    --out "$DIR/ck_res4.model" 2> /dev/null
cmp -s "$DIR/ck_ref.model" "$DIR/ck_res4.model"

# --resume failure matrix: missing file 66; truncated/corrupt 65;
# version skew 65; different problem instance (fingerprint) 65;
# different learner 65; checkpoint modifiers without --checkpoint 64.
rc=0
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/dh.txt" \
    --resume "$DIR/absent.ckpt" 2> /dev/null || rc=$?
[ "$rc" -eq 66 ]

head -c 60 "$DIR/c.ckpt" > "$DIR/trunc.ckpt"
rc=0
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/dh.txt" --rank 1 \
    --radius 1 --ell 2 --resume "$DIR/trunc.ckpt" \
    2> "$DIR/trunc.log" || rc=$?
[ "$rc" -eq 65 ]
grep -q 'truncated' "$DIR/trunc.log"

sed 's/^folearn-checkpoint v1$/folearn-checkpoint v9/' "$DIR/c.ckpt" \
    > "$DIR/v9.ckpt"
rc=0
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/dh.txt" --rank 1 \
    --radius 1 --ell 2 --resume "$DIR/v9.ckpt" 2> "$DIR/v9.log" || rc=$?
[ "$rc" -eq 65 ]
grep -q "unsupported checkpoint version 'v9'" "$DIR/v9.log"

rc=0
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/dh.txt" --rank 2 \
    --radius 1 --ell 2 --resume "$DIR/c.ckpt" 2> "$DIR/fp.log" || rc=$?
[ "$rc" -eq 65 ]
grep -q 'fingerprint' "$DIR/fp.log"

rc=0
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/dh.txt" --rank 1 \
    --radius 1 --ell 2 --learner nd --resume "$DIR/c.ckpt" \
    2> /dev/null || rc=$?
[ "$rc" -eq 65 ]

rc=0
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/dh.txt" \
    --checkpoint-every-ms 50 2> /dev/null || rc=$?
[ "$rc" -eq 64 ]

rc=0
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/dh.txt" \
    --crash-at-save 1 2> /dev/null || rc=$?
[ "$rc" -eq 64 ]

# 11. --cache-bytes is a pure memory knob: a tiny budget must not change
#     the learned model.
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/dh.txt" --rank 1 \
    --radius 1 --ell 2 --cache-bytes 1024 --out "$DIR/cb.model" \
    2> /dev/null
cmp -s "$DIR/ck_ref.model" "$DIR/cb.model"

# 12. Numeric flag audit: every malformed value exits 64 with a
#     diagnostic naming the flag — never a silent truncation, never an
#     uncaught parse exception.
expect_64() {
  log="$DIR/f64.log"
  rc=0
  "$CLI" "$@" 2> "$log" || rc=$?
  [ "$rc" -eq 64 ] || { echo "expected 64, got $rc: $*" >&2; exit 1; }
  [ -s "$log" ] || { echo "no diagnostic for: $*" >&2; exit 1; }
}

# Trailing garbage and int-overflowing values in an int flag.
expect_64 learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --threads 4x
grep -q "invalid value '4x' for flag '--threads'" "$DIR/f64.log"
expect_64 learn --graph "$DIR/g.txt" --data "$DIR/d.txt" \
    --threads 4294967298
grep -q "invalid value '4294967298' for flag '--threads'" "$DIR/f64.log"
expect_64 learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --threads -1

# int64 overflow is caught by the parser, not wrapped.
expect_64 learn --graph "$DIR/g.txt" --data "$DIR/d.txt" \
    --max-work 99999999999999999999

# Negative budgets/arities are typos, not sentinels.
expect_64 learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --cache-bytes -1
grep -q -- '--cache-bytes must be >= 0' "$DIR/f64.log"
expect_64 eval --graph "$DIR/g.txt" --data "$DIR/d.txt" \
    --model "$DIR/m.txt" --cache-bytes -1
expect_64 learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --ell -1
expect_64 learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --rank -1
expect_64 learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --radius -2
expect_64 learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --epsilon 1.5
expect_64 learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --epsilon 0

# generate validates its distribution parameters too.
expect_64 generate --family tree --n 0 --out "$DIR/zz.txt"
expect_64 generate --family gnp --n 10 --p 1.5 --out "$DIR/zz.txt"
expect_64 generate --family tree --n 10 --color Red:x --out "$DIR/zz.txt"
expect_64 generate --family nosuch --n 10 --out "$DIR/zz.txt"

# 13. SIGINT/SIGTERM cancel the governed search cooperatively: the run
#     exits through the normal best-so-far path (exit 3), writes a valid
#     model, and leaves a loadable final checkpoint behind.
"$CLI" generate --family tree --n 300 --seed 7 --color Red:0.4 \
    --out "$DIR/big.txt"
{
  echo "examples 1"
  v=0
  while [ "$v" -lt 300 ]; do
    if [ $((v % 7)) -lt 3 ]; then echo "+ $v"; else echo "- $v"; fi
    v=$((v + 1))
  done
} > "$DIR/bigd.txt"

for sig in INT TERM; do
  rc=0
  "$CLI" learn --graph "$DIR/big.txt" --data "$DIR/bigd.txt" --rank 1 \
      --radius 1 --ell 2 --checkpoint "$DIR/sig.ckpt" \
      --out "$DIR/sig.model" 2> "$DIR/sig.log" &
  pid=$!
  sleep 1
  kill -"$sig" "$pid" 2> /dev/null || true
  wait "$pid" || rc=$?
  [ "$rc" -eq 3 ] || { echo "SIG$sig: expected exit 3, got $rc" >&2; exit 1; }
  grep -q 'resource limit hit (cancelled)' "$DIR/sig.log"
  grep -q '^hypothesis ' "$DIR/sig.model"
  grep -q '^folearn-checkpoint v1$' "$DIR/sig.ckpt"
  rm -f "$DIR/sig.ckpt" "$DIR/sig.model"
done

# The final checkpoint from a cancelled run resumes cleanly (here under a
# small work budget, so the resumed leg itself degrades with exit 3
# rather than running the full scan — the point is that the checkpoint
# loads and is compatible).
rc=0
"$CLI" learn --graph "$DIR/big.txt" --data "$DIR/bigd.txt" --rank 1 \
    --radius 1 --ell 2 --checkpoint "$DIR/sig2.ckpt" \
    --out "$DIR/sig2.model" 2> /dev/null &
pid=$!
sleep 1
kill -INT "$pid" 2> /dev/null || true
wait "$pid" || rc=$?
[ "$rc" -eq 3 ]
rc=0
"$CLI" learn --graph "$DIR/big.txt" --data "$DIR/bigd.txt" --rank 1 \
    --radius 1 --ell 2 --resume "$DIR/sig2.ckpt" --max-work 25 \
    --out "$DIR/sig2b.model" 2> /dev/null || rc=$?
[ "$rc" -eq 3 ]
grep -q '^hypothesis ' "$DIR/sig2b.model"

echo "CLI_TEST_OK"
