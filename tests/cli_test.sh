#!/bin/sh
# End-to-end test of the folearn_cli tool: generate → label → learn →
# save → evaluate → model-check (direct and via the Theorem 1 reduction)
# → profile. Invoked by ctest with the CLI path as $1.
set -eu

CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

# 1. Generate a coloured random tree.
"$CLI" generate --family tree --n 40 --seed 11 --color Red:0.3 \
    --out "$DIR/g.txt"
grep -q '^graph 40$' "$DIR/g.txt"

# 2. Build a dataset: label = vertex is Red (read off the graph file).
reds=$(grep '^color Red' "$DIR/g.txt" | cut -d' ' -f3-)
{
  echo "examples 1"
  v=0
  while [ "$v" -lt 40 ]; do
    label="-"
    for r in $reds; do
      [ "$r" = "$v" ] && label="+"
    done
    echo "$label $v"
    v=$((v + 1))
  done
} > "$DIR/d.txt"

# 3. Learn (brute force, then the nowhere-dense learner).
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --rank 1 \
    --radius 1 --out "$DIR/m.txt" 2> "$DIR/learn.log"
grep -q 'training error: 0.0000' "$DIR/learn.log"
grep -q '^hypothesis k 1 ell 0$' "$DIR/m.txt"

"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --rank 1 \
    --radius 1 --learner nd --out "$DIR/m_nd.txt" 2> "$DIR/nd.log"
grep -q 'training error: 0.0000' "$DIR/nd.log"

"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --rank 1 \
    --radius 1 --learner sublinear --out "$DIR/m_sub.txt" 2> "$DIR/sub.log"
grep -q 'training error: 0.0000' "$DIR/sub.log"

# 4. Evaluate the saved model.
"$CLI" eval --graph "$DIR/g.txt" --data "$DIR/d.txt" \
    --model "$DIR/m.txt" | grep -q 'error: 0.0000'

# 5. Model checking, direct and via the learning-oracle reduction, must
#    agree (both say "true": some red vertex exists).
direct=$("$CLI" mc --graph "$DIR/g.txt" --sentence "exists x. Red(x)" || true)
reduced=$("$CLI" mc --graph "$DIR/g.txt" --sentence "exists x. Red(x)" \
    --via-erm 1 2>/dev/null || true)
[ "$direct" = "true" ]
[ "$direct" = "$reduced" ]

# 5b. The interpreted reference evaluator agrees with the compiled
#     default, for both eval and mc; a bad --eval value exits 64.
"$CLI" eval --graph "$DIR/g.txt" --data "$DIR/d.txt" \
    --model "$DIR/m.txt" --eval interpreted | grep -q 'error: 0.0000'
interp=$("$CLI" mc --graph "$DIR/g.txt" --sentence "exists x. Red(x)" \
    --eval interpreted || true)
[ "$interp" = "$direct" ]
rc=0
"$CLI" mc --graph "$DIR/g.txt" --sentence "exists x. Red(x)" \
    --eval fast 2> "$DIR/badeval.log" || rc=$?
[ "$rc" -eq 64 ]
grep -q "\-\-eval must be 'interpreted' or 'compiled'" "$DIR/badeval.log"

# 6. Profile prints the invariants table.
"$CLI" profile --graph "$DIR/g.txt" --radius 2 | grep -q 'degeneracy'

# 7. Flag hygiene: duplicates and unknown flags are rejected (exit 64).
rc=0
"$CLI" learn --graph "$DIR/g.txt" --graph "$DIR/g.txt" \
    --data "$DIR/d.txt" 2> "$DIR/dup.log" || rc=$?
[ "$rc" -eq 64 ]
grep -q "duplicate flag '--graph'" "$DIR/dup.log"

rc=0
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/d.txt" \
    --bogus 1 2> "$DIR/unknown.log" || rc=$?
[ "$rc" -eq 64 ]
grep -q "unknown flag '--bogus' for command 'learn'" "$DIR/unknown.log"

rc=0
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/d.txt" \
    --max-work 0 2> /dev/null || rc=$?
[ "$rc" -eq 64 ]

rc=0
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/d.txt" \
    --max-work abc 2> "$DIR/badnum.log" || rc=$?
[ "$rc" -eq 64 ]
grep -q "invalid value 'abc' for flag '--max-work'" "$DIR/badnum.log"

# 8. Resource limits: a generous work budget completes normally (exit 0);
#    a tiny one degrades gracefully — best-so-far model, exit 3.
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --rank 1 \
    --radius 1 --max-work 100000000 --out "$DIR/m_full.txt" 2> /dev/null
cmp -s "$DIR/m.txt" "$DIR/m_full.txt"

rc=0
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --rank 1 \
    --radius 1 --ell 1 --max-work 25 --out "$DIR/m_cut.txt" \
    2> "$DIR/cut.log" || rc=$?
[ "$rc" -eq 3 ]
grep -q 'resource limit hit (budget-exhausted)' "$DIR/cut.log"
grep -q '^hypothesis ' "$DIR/m_cut.txt"

# Same budget twice: the degraded model is deterministic.
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --rank 1 \
    --radius 1 --ell 1 --max-work 25 --out "$DIR/m_cut2.txt" \
    2> /dev/null || true
cmp -s "$DIR/m_cut.txt" "$DIR/m_cut2.txt"

# mc under a tiny budget refuses to report a truth value (exit 3).
rc=0
out=$("$CLI" mc --graph "$DIR/g.txt" \
    --sentence "forall x. exists y. E(x, y)" --max-work 2 \
    2> /dev/null) || rc=$?
[ "$rc" -eq 3 ]
[ "$out" = "indeterminate" ]

echo "CLI_TEST_OK"
