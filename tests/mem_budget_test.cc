// Memory governance: the hierarchical byte accountant, pressure-tier
// classification, resource-fault injection, the governor's
// kResourceExhausted cut, and the caches' accounted / read-through modes
// (which must never change results — only whether bytes are retained).

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "learn/dataset.h"
#include "learn/erm.h"
#include "learn/hypothesis.h"
#include "learn/model_io.h"
#include "types/type.h"
#include "util/governor.h"
#include "util/mem_budget.h"
#include "util/status.h"

namespace folearn {
namespace {

// ---------------------------------------------------------------------
// MemBudget: hierarchy, rollback, forced charges, residual release.

TEST(MemBudget, TryChargeAndReleaseTrackUsage) {
  MemBudget budget(100);
  EXPECT_TRUE(budget.TryCharge(60));
  EXPECT_EQ(budget.used(), 60);
  EXPECT_TRUE(budget.TryCharge(40));
  EXPECT_EQ(budget.used(), 100);
  EXPECT_FALSE(budget.TryCharge(1));
  EXPECT_EQ(budget.used(), 100);  // refused charge leaves usage intact
  EXPECT_EQ(budget.denied(), 1);
  budget.Release(50);
  EXPECT_EQ(budget.used(), 50);
  EXPECT_TRUE(budget.TryCharge(50));
  EXPECT_EQ(budget.peak(), 100);
}

TEST(MemBudget, HierarchyChargesEveryLevelAllOrNothing) {
  MemBudget process(1000);
  MemBudget session(100, &process);
  MemBudget arena(kNoMemLimit, &session);

  EXPECT_TRUE(arena.TryCharge(80));
  EXPECT_EQ(arena.used(), 80);
  EXPECT_EQ(session.used(), 80);
  EXPECT_EQ(process.used(), 80);

  // The session cap refuses; the rollback must leave every level exactly
  // where it was — including the unlimited leaf.
  EXPECT_FALSE(arena.TryCharge(30));
  EXPECT_EQ(arena.used(), 80);
  EXPECT_EQ(session.used(), 80);
  EXPECT_EQ(process.used(), 80);

  arena.Release(80);
  EXPECT_EQ(process.used(), 0);
}

TEST(MemBudget, AncestorCapRefusesEvenWhenLeafIsUnbounded) {
  MemBudget process(50);
  MemBudget leaf(kNoMemLimit, &process);
  EXPECT_TRUE(leaf.TryCharge(50));
  EXPECT_FALSE(leaf.TryCharge(1));
  EXPECT_EQ(process.used(), 50);
}

TEST(MemBudget, ForcedChargeOvershootsAndOverLimitSeesIt) {
  MemBudget process(100);
  MemBudget session(40, &process);
  EXPECT_FALSE(session.OverLimit());
  session.Charge(60);  // correctness state: cannot be refused
  EXPECT_EQ(session.used(), 60);
  EXPECT_TRUE(session.OverLimit());
  // A child under its own (absent) limit still reports an over-limit
  // ancestor — the governor probes from the leaf.
  MemBudget arena(kNoMemLimit, &session);
  EXPECT_TRUE(arena.OverLimit());
  session.Release(60);
  EXPECT_FALSE(session.OverLimit());
}

TEST(MemBudget, DestructorReturnsResidualToParent) {
  MemBudget process(kNoMemLimit);
  {
    MemBudget session(kNoMemLimit, &process);
    session.Charge(1234);  // e.g. a journal share never explicitly freed
    EXPECT_EQ(process.used(), 1234);
  }
  EXPECT_EQ(process.used(), 0);
}

// ---------------------------------------------------------------------
// Pressure tiers.

TEST(PressureTier, ClassifiesAgainstThresholds) {
  PressureThresholds t;  // 0.70 / 0.85 / 0.95
  EXPECT_EQ(ClassifyPressure(0, 1000, t), PressureTier::kGreen);
  EXPECT_EQ(ClassifyPressure(699, 1000, t), PressureTier::kGreen);
  EXPECT_EQ(ClassifyPressure(700, 1000, t), PressureTier::kYellow);
  EXPECT_EQ(ClassifyPressure(850, 1000, t), PressureTier::kRed);
  EXPECT_EQ(ClassifyPressure(950, 1000, t), PressureTier::kBlack);
  EXPECT_EQ(ClassifyPressure(5000, 1000, t), PressureTier::kBlack);
}

TEST(PressureTier, NoBudgetIsAlwaysGreen) {
  EXPECT_EQ(ClassifyPressure(1 << 30, kNoMemLimit), PressureTier::kGreen);
  EXPECT_EQ(ClassifyPressure(1 << 30, 0), PressureTier::kGreen);
}

TEST(PressureTier, NamesAreStable) {
  EXPECT_STREQ(PressureTierName(PressureTier::kGreen), "green");
  EXPECT_STREQ(PressureTierName(PressureTier::kYellow), "yellow");
  EXPECT_STREQ(PressureTierName(PressureTier::kRed), "red");
  EXPECT_STREQ(PressureTierName(PressureTier::kBlack), "black");
}

TEST(PressureTier, ReadRssReportsSomethingPlausible) {
  const int64_t rss = ReadRssBytes();
  // /proc is available on every platform this suite runs on; a running
  // test binary is at least a megabyte and well under a terabyte.
  EXPECT_GT(rss, 1 << 20);
  EXPECT_LT(rss, int64_t{1} << 40);
}

// ---------------------------------------------------------------------
// ResourceFaults: deterministic one-shot resource failures.

class ResourceFaultsTest : public ::testing::Test {
 protected:
  void SetUp() override { ResourceFaults::Instance().Reset(); }
  void TearDown() override { ResourceFaults::Instance().Reset(); }
};

TEST_F(ResourceFaultsTest, AllocFailureFiresExactlyOnce) {
  MemBudget budget(kNoMemLimit);
  EXPECT_TRUE(budget.TryCharge(1));  // site 1
  ResourceFaults::Instance().ArmAllocFailure(2);  // 2nd future charge
  EXPECT_TRUE(budget.TryCharge(1));   // 1st after arming: passes
  EXPECT_FALSE(budget.TryCharge(1));  // 2nd after arming: injected failure
  EXPECT_TRUE(budget.TryCharge(1));   // disarmed again
  EXPECT_EQ(budget.used(), 3);        // the failed charge left no trace
  EXPECT_EQ(budget.denied(), 1);
}

TEST_F(ResourceFaultsTest, CountersRunWhileDisarmed) {
  MemBudget budget(kNoMemLimit);
  const int64_t before = ResourceFaults::Instance().alloc_sites();
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(budget.TryCharge(1));
  EXPECT_EQ(ResourceFaults::Instance().alloc_sites(), before + 5);
}

// ---------------------------------------------------------------------
// Governor: the memory probe cuts with kResourceExhausted.

TEST(GovernorMemory, OverLimitBudgetCutsWithResourceExhausted) {
  MemBudget budget(100);
  budget.Charge(200);  // forced past the limit
  GovernorLimits limits;
  limits.mem_budget = &budget;
  ResourceGovernor governor(limits);
  // The memory probe runs at the clock-probe stride; the run must be cut
  // within one stride of checkpoints.
  bool cut = false;
  for (int i = 0; i < 300; ++i) {
    if (!governor.Checkpoint()) {
      cut = true;
      break;
    }
  }
  EXPECT_TRUE(cut);
  EXPECT_EQ(governor.status(), RunStatus::kResourceExhausted);
  EXPECT_TRUE(governor.Interrupted());
  EXPECT_STREQ(RunStatusName(RunStatus::kResourceExhausted),
               "resource-exhausted");
}

TEST(GovernorMemory, UnderLimitBudgetNeverTrips) {
  MemBudget budget(1 << 20);
  budget.Charge(100);
  GovernorLimits limits;
  limits.mem_budget = &budget;
  ResourceGovernor governor(limits);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(governor.Checkpoint());
  EXPECT_EQ(governor.status(), RunStatus::kComplete);
}

TEST(GovernorMemory, PassiveLimitSeesMemoryPressure) {
  MemBudget budget(10);
  GovernorLimits limits;
  limits.mem_budget = &budget;
  ResourceGovernor governor(limits);
  EXPECT_FALSE(governor.PassiveLimitHit());
  budget.Charge(20);
  EXPECT_TRUE(governor.PassiveLimitHit());
}

TEST(GovernorMemory, ResourceExhaustedMapsToTempFailExitCode) {
  EXPECT_EQ(StatusExitCode(ResourceExhaustedError("over budget")),
            kExitTempFail);
  EXPECT_EQ(kExitTempFail, 75);
}

// ---------------------------------------------------------------------
// BallCache accounting: attach, refuse, read-through — byte-identical
// results in every mode.

std::vector<Vertex> CollectBall(BallCache* cache, Vertex v, int radius) {
  const std::span<const Vertex> ball = cache->VertexBall(v, radius);
  return std::vector<Vertex>(ball.begin(), ball.end());
}

TEST(BallCacheAccounting, AccountMirrorsBytesAndReleasesOnDestruction) {
  Graph g = MakeCycle(32);
  MemBudget budget(kNoMemLimit);
  {
    BallCache cache(g);
    cache.set_mem_account(&budget);
    for (Vertex v = 0; v < 16; ++v) CollectBall(&cache, v, 2);
    EXPECT_GT(cache.bytes(), 0);
    EXPECT_EQ(budget.used(), cache.bytes());
  }
  EXPECT_EQ(budget.used(), 0);
}

TEST(BallCacheAccounting, RefusedChargeServesUncachedIdentically) {
  Graph g = MakeCycle(64);
  BallCache reference(g);
  // A parent so tight that only a few entries fit: inserts beyond it are
  // shed, but every returned ball must equal the unaccounted reference.
  MemBudget tight(256);
  BallCache accounted(g);
  accounted.set_mem_account(&tight);
  for (Vertex v = 0; v < 64; ++v) {
    EXPECT_EQ(CollectBall(&accounted, v, 2), CollectBall(&reference, v, 2))
        << "vertex " << v;
  }
  EXPECT_GT(accounted.shed_inserts(), 0);
  EXPECT_LE(tight.used(), 256);
}

TEST(BallCacheAccounting, ReadThroughFreezesGrowthNotResults) {
  Graph g = MakeCycle(64);
  BallCache reference(g);
  std::atomic<bool> read_through{false};
  BallCache cache(g);
  cache.set_read_through(&read_through);
  for (Vertex v = 0; v < 8; ++v) CollectBall(&cache, v, 2);
  const int64_t frozen_bytes = cache.bytes();
  const int64_t frozen_entries = cache.cached_balls();
  read_through.store(true);
  for (Vertex v = 8; v < 32; ++v) {
    EXPECT_EQ(CollectBall(&cache, v, 2), CollectBall(&reference, v, 2));
  }
  EXPECT_EQ(cache.bytes(), frozen_bytes);
  EXPECT_EQ(cache.cached_balls(), frozen_entries);
  EXPECT_GT(cache.shed_inserts(), 0);
  // Frozen entries still serve hits.
  const int64_t hits_before = cache.hits();
  CollectBall(&cache, 0, 2);
  EXPECT_EQ(cache.hits(), hits_before + 1);
  // Unfreezing resumes growth.
  read_through.store(false);
  CollectBall(&cache, 40, 2);
  EXPECT_GT(cache.cached_balls(), frozen_entries);
}

TEST(BallCacheAccounting, ClearDropsEverythingAndReleasesAccount) {
  Graph g = MakeCycle(32);
  MemBudget budget(kNoMemLimit);
  BallCache cache(g);
  cache.set_mem_account(&budget);
  for (Vertex v = 0; v < 8; ++v) CollectBall(&cache, v, 1);
  EXPECT_GT(budget.used(), 0);
  cache.Clear();
  EXPECT_EQ(cache.bytes(), 0);
  EXPECT_EQ(cache.cached_balls(), 0);
  EXPECT_EQ(budget.used(), 0);
  // A cleared cache is just cold, not broken.
  BallCache reference(g);
  EXPECT_EQ(CollectBall(&cache, 3, 2), CollectBall(&reference, 3, 2));
}

// ---------------------------------------------------------------------
// TypeRegistry accounting: forced charges for correctness state.

TEST(TypeRegistryAccounting, InternChargesAndDestructorReleases) {
  Graph g = MakeCycle(8);
  MemBudget budget(kNoMemLimit);
  {
    TypeRegistry registry(g.vocabulary());
    registry.set_mem_account(&budget);
    Vertex tuple[] = {0};
    ComputeType(g, tuple, 1, &registry);
    EXPECT_GT(registry.approx_bytes(), 0);
    EXPECT_EQ(budget.used(), registry.approx_bytes());
  }
  EXPECT_EQ(budget.used(), 0);
}

TEST(TypeRegistryAccounting, AttachAfterGrowthChargesExistingNodes) {
  Graph g = MakeCycle(8);
  TypeRegistry registry(g.vocabulary());
  Vertex tuple[] = {0};
  ComputeType(g, tuple, 1, &registry);
  MemBudget budget(kNoMemLimit);
  registry.set_mem_account(&budget);
  EXPECT_EQ(budget.used(), registry.approx_bytes());
  registry.set_mem_account(nullptr);
  EXPECT_EQ(budget.used(), 0);
}

// ---------------------------------------------------------------------
// End-to-end: a memory-governed ERM sweep is cut with best-so-far and
// an accounted sweep returns byte-identical results.

TrainingSet SmallTrainingSet() {
  TrainingSet examples;
  examples.push_back({{0}, true});
  examples.push_back({{1}, false});
  examples.push_back({{2}, true});
  examples.push_back({{3}, false});
  return examples;
}

TEST(ErmMemoryGovernance, AccountingNeverChangesResults) {
  Graph g = MakeCycle(12);
  TrainingSet examples = SmallTrainingSet();
  ErmOptions plain;
  plain.rank = 1;
  plain.radius = 1;
  ErmResult reference = BruteForceErm(g, examples, 1, plain);

  MemBudget budget(kNoMemLimit);
  ErmOptions accounted = plain;
  accounted.mem_budget = &budget;
  ErmResult governed = BruteForceErm(g, examples, 1, accounted);

  EXPECT_EQ(governed.training_error, reference.training_error);
  EXPECT_EQ(governed.status, RunStatus::kComplete);
  EXPECT_EQ(HypothesisToText(governed.hypothesis.ToExplicit()),
            HypothesisToText(reference.hypothesis.ToExplicit()));
  // Worker shards and caches died with the sweep: everything released.
  EXPECT_EQ(budget.used(), 0);
}

TEST(ErmMemoryGovernance, OverBudgetSweepCutsWithResourceExhausted) {
  Graph g = MakeCycle(24);
  TrainingSet examples = SmallTrainingSet();
  // Correctness state forced past the cap before the sweep: the governor's
  // memory probe (which fires at the very first checkpoint) cuts the run
  // with the governed status instead of letting it keep allocating.
  MemBudget budget(1);
  budget.Charge(64);
  GovernorLimits limits;
  limits.mem_budget = &budget;
  ResourceGovernor governor(limits);
  ErmOptions options;
  options.rank = 1;
  options.radius = 1;
  options.governor = &governor;
  options.mem_budget = &budget;
  ErmResult result = BruteForceErm(g, examples, 1, options);
  EXPECT_EQ(result.status, RunStatus::kResourceExhausted);
  // Anytime contract: interrupted early, not crashed.
  EXPECT_LT(result.parameter_tuples_tried, static_cast<int64_t>(g.order()));
}

}  // namespace
}  // namespace folearn
