#include <gtest/gtest.h>

#include "fo/parser.h"
#include "graph/generators.h"
#include "mc/evaluator.h"
#include "util/rng.h"

namespace folearn {
namespace {

Graph ColoredPath() {
  Graph g = MakePath(6);
  AddPeriodicColor(g, "Red", 2, 0);   // 0, 2, 4
  AddPeriodicColor(g, "Blue", 3, 0);  // 0, 3
  return g;
}

TEST(Evaluator, Atoms) {
  Graph g = ColoredPath();
  std::string vars[] = {"x", "y"};
  Vertex t01[] = {0, 1};
  Vertex t02[] = {0, 2};
  Vertex t00[] = {0, 0};
  FormulaRef edge = MustParseFormula("E(x, y)");
  FormulaRef eq = MustParseFormula("x = y");
  FormulaRef red = MustParseFormula("Red(x)");
  EXPECT_TRUE(EvaluateQuery(g, edge, vars, t01));
  EXPECT_FALSE(EvaluateQuery(g, edge, vars, t02));
  EXPECT_FALSE(EvaluateQuery(g, edge, vars, t00));  // irreflexive
  EXPECT_TRUE(EvaluateQuery(g, eq, vars, t00));
  EXPECT_FALSE(EvaluateQuery(g, eq, vars, t01));
  EXPECT_TRUE(EvaluateQuery(g, red, vars, t01));
  Vertex t10[] = {1, 0};
  EXPECT_FALSE(EvaluateQuery(g, red, vars, t10));
}

TEST(Evaluator, Connectives) {
  Graph g = ColoredPath();
  std::string vars[] = {"x"};
  Vertex t0[] = {0};
  Vertex t2[] = {2};
  FormulaRef both = MustParseFormula("Red(x) & Blue(x)");
  FormulaRef either = MustParseFormula("Red(x) | Blue(x)");
  FormulaRef neither = MustParseFormula("!Red(x) & !Blue(x)");
  EXPECT_TRUE(EvaluateQuery(g, both, vars, t0));
  EXPECT_FALSE(EvaluateQuery(g, both, vars, t2));
  EXPECT_TRUE(EvaluateQuery(g, either, vars, t2));
  Vertex t1[] = {1};
  EXPECT_TRUE(EvaluateQuery(g, neither, vars, t1));
}

TEST(Evaluator, Quantifiers) {
  Graph g = ColoredPath();
  EXPECT_TRUE(EvaluateSentence(g, MustParseFormula("exists x. Red(x)")));
  EXPECT_FALSE(EvaluateSentence(g, MustParseFormula("forall x. Red(x)")));
  EXPECT_TRUE(EvaluateSentence(
      g, MustParseFormula("forall x. (Blue(x) -> exists y. E(x, y))")));
  // Every red vertex has a non-red neighbour (path 0..5, red at 0,2,4).
  EXPECT_TRUE(EvaluateSentence(
      g, MustParseFormula(
             "forall x. (Red(x) -> exists y. (E(x, y) & !Red(y)))")));
}

TEST(Evaluator, NestedQuantifierScoping) {
  Graph g = MakePath(4);
  // ∃x∀y∃x' scoping: inner binder shadows outer.
  FormulaRef f = MustParseFormula(
      "exists x. forall y. exists x. (E(x, y) | x = y)");
  EXPECT_TRUE(EvaluateSentence(g, f));
}

TEST(Evaluator, TwoDistantVerticesOnCycle) {
  Graph g = MakeCycle(8);
  // There exist two non-adjacent, distinct vertices.
  FormulaRef f = MustParseFormula(
      "exists x. exists y. (!E(x, y) & !x = y)");
  EXPECT_TRUE(EvaluateSentence(g, f));
  Graph triangle = MakeComplete(3);
  EXPECT_FALSE(EvaluateSentence(triangle, f));
}

TEST(Evaluator, MissingColorPolicy) {
  Graph g = MakePath(3);
  std::string vars[] = {"x"};
  Vertex t0[] = {0};
  FormulaRef f = MustParseFormula("Ghost(x)");
  EvalOptions lenient;
  lenient.missing_color_is_false = true;
  EXPECT_FALSE(EvaluateQuery(g, f, vars, t0, lenient));
  EXPECT_DEATH(EvaluateQuery(g, f, vars, t0), "Ghost");
}

TEST(Evaluator, UnboundVariableDies) {
  Graph g = MakePath(3);
  FormulaRef f = MustParseFormula("E(x, y)");
  std::string vars[] = {"x"};
  Vertex t0[] = {0};
  EXPECT_DEATH(EvaluateQuery(g, f, vars, t0), "unbound");
}

TEST(Evaluator, StatsCountWork) {
  Graph g = MakePath(5);
  EvalStats stats;
  EvaluateSentence(g, MustParseFormula("forall x. exists y. E(x, y)"), {},
                   &stats);
  EXPECT_GT(stats.quantifier_branches, 0);
  EXPECT_GT(stats.atom_evaluations, 0);
}

TEST(Evaluator, EvaluateOnTuplesMatchesSingle) {
  Graph g = ColoredPath();
  FormulaRef f = MustParseFormula("exists y. (E(x, y) & Red(y))");
  std::string vars[] = {"x"};
  std::vector<std::vector<Vertex>> tuples;
  for (Vertex v = 0; v < g.order(); ++v) tuples.push_back({v});
  std::vector<bool> results = EvaluateOnTuples(g, f, vars, tuples);
  for (Vertex v = 0; v < g.order(); ++v) {
    Vertex tuple[] = {v};
    EXPECT_EQ(results[v], EvaluateQuery(g, f, vars, tuple)) << v;
  }
}

TEST(Assignment, StackSemantics) {
  Assignment a;
  a.Bind("x", 1);
  a.Bind("x", 2);
  EXPECT_EQ(a.Lookup("x"), 2);
  a.Unbind("x");
  EXPECT_EQ(a.Lookup("x"), 1);
  EXPECT_FALSE(a.Lookup("y").has_value());
}

// Degree-based property: on K_n, ∃x∃y !E(x,y) & x≠y is false; on K_n minus
// an edge it is true.
TEST(Evaluator, CompleteGraphMinusEdge) {
  FormulaRef f =
      MustParseFormula("exists x. exists y. (!E(x, y) & !x = y)");
  for (int n = 2; n <= 6; ++n) {
    Graph complete = MakeComplete(n);
    EXPECT_FALSE(EvaluateSentence(complete, f)) << n;
    complete.RemoveEdge(0, 1);
    EXPECT_TRUE(EvaluateSentence(complete, f)) << n;
  }
}

}  // namespace
}  // namespace folearn
