// Determinism pinning: the whole pipeline is seeded, so these exact values
// must reproduce run after run and machine after machine. A change here
// means an algorithm changed behaviour (intended: update the constants;
// unintended: a nondeterminism or logic regression slipped in).
//
// Values were captured from a reference run; they are *behavioural*
// fingerprints, not correctness oracles — correctness is covered by the
// rest of the suite.

#include <gtest/gtest.h>

#include "fo/parser.h"
#include "fo/printer.h"
#include "graph/generators.h"
#include "graph/invariants.h"
#include "learn/erm.h"
#include "learn/vc.h"
#include "nd/wcol.h"
#include "util/rng.h"

namespace folearn {
namespace {

class RegressionFixture : public ::testing::Test {
 protected:
  RegressionFixture() : rng_(424242) {
    graph_ = MakeRandomTree(45, rng_);
    AddRandomColors(graph_, {"Red"}, 0.35, rng_);
  }

  Rng rng_;
  Graph graph_{0};
};

TEST_F(RegressionFixture, GeneratorFingerprint) {
  EXPECT_EQ(graph_.order(), 45);
  EXPECT_EQ(graph_.EdgeCount(), 44);
  EXPECT_EQ(graph_.MaxDegree(), 5);
}

TEST_F(RegressionFixture, InvariantFingerprint) {
  EXPECT_EQ(ComputeDegeneracy(graph_).degeneracy, 1);
  EXPECT_EQ(ComputeDiameter(graph_), 18);
  EXPECT_EQ(WeakColoringNumberDegeneracyOrder(graph_, 2), 3);
}

TEST_F(RegressionFixture, LearningFingerprint) {
  TrainingSet examples = LabelByQuery(
      graph_, MustParseFormula("exists z. (E(x1, z) & Red(z))"),
      QueryVars(1), AllTuples(graph_.order(), 1));
  FlipLabels(examples, 0.1, rng_);

  ErmResult erm = TypeMajorityErm(graph_, examples, {}, {1, 2});
  EXPECT_NEAR(erm.training_error, 0.022222, 1e-6);
  EXPECT_EQ(erm.distinct_types_seen, 14);
  EXPECT_EQ(erm.hypothesis.accepted.size(), 8u);

  ErmResult brute = BruteForceErm(graph_, examples, 1, {1, 1});
  EXPECT_EQ(brute.training_error, 0.0);
  ASSERT_EQ(brute.hypothesis.parameters.size(), 1u);
  EXPECT_EQ(brute.hypothesis.parameters[0], 6);
  EXPECT_EQ(brute.parameter_tuples_tried, 7);
}

TEST_F(RegressionFixture, VcFingerprint) {
  VcOptions options;
  options.rank = 1;
  options.radius = 1;
  EXPECT_EQ(ComputeVcDimension(graph_, 1, options).vc_dimension, 6);
}

// Two independent constructions from the same seed must agree bit-for-bit
// on a learned hypothesis's serialised form.
TEST(Regression, LearnedFormulaIsStableAcrossRuns) {
  auto run = [] {
    Rng rng(777);
    Graph g = MakeCaterpillar(8, 2);
    AddRandomColors(g, {"Red"}, 0.4, rng);
    TrainingSet ex = LabelByQuery(g, MustParseFormula("Red(x1)"),
                                  QueryVars(1), AllTuples(g.order(), 1));
    ErmResult r = TypeMajorityErm(g, ex, {}, {1, 1});
    return ToString(r.hypothesis.ToExplicit().formula);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace folearn
