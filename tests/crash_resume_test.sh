#!/bin/sh
# Crash-loop harness for the checkpoint/resume subsystem: a learn run is
# repeatedly killed by injected crash points (--crash-at-save, exit 70),
# resumed from its checkpoint, and the survivor's model + diagnostics are
# compared byte-for-byte against an uninterrupted reference run. Covers
# both the ungoverned path and a --max-work budget (the governor ledger
# must be restored so the budget trips at the original cut point).
#
# Usage: crash_resume_test.sh <path-to-folearn_cli> [threads]
set -eu

CLI="$1"
THREADS="${2:-1}"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

# Inputs: a coloured tree and labels no rank-1 hypothesis fits exactly
# (periodic in the vertex id), so the scan cannot early-stop at zero error
# and must walk all of pool^2.
"$CLI" generate --family tree --n 60 --seed 11 --color Red:0.3 \
    --out "$DIR/g.txt"
{
  echo "examples 1"
  v=0
  while [ "$v" -lt 60 ]; do
    if [ $((v % 7)) -lt 3 ]; then echo "+ $v"; else echo "- $v"; fi
    v=$((v + 1))
  done
} > "$DIR/d.txt"

# Runs learn to completion through a crash-resume loop. $1: extra flags
# for every invocation; $2: output prefix. Each process is allowed two
# checkpoint saves, then dies with exit 70; the next iteration resumes.
# Progress (one 64-candidate segment per save) guarantees termination; the
# iteration bound is the backstop that turns a livelock into a failure.
crash_loop() {
  extra="$1"
  prefix="$2"
  ckpt="$DIR/$prefix.ckpt"
  rc=0
  "$CLI" learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --rank 1 \
      --radius 1 --ell 2 --threads "$THREADS" $extra \
      --checkpoint "$ckpt" --crash-at-save 2 \
      --out "$DIR/$prefix.model" 2> "$DIR/$prefix.log" || rc=$?
  iterations=0
  while [ "$rc" -eq 70 ]; do
    iterations=$((iterations + 1))
    if [ "$iterations" -gt 40 ]; then
      echo "FAIL: crash loop did not terminate after 40 resumes" >&2
      exit 1
    fi
    rc=0
    "$CLI" learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --rank 1 \
        --radius 1 --ell 2 --threads "$THREADS" $extra \
        --checkpoint "$ckpt" --crash-at-save 2 --resume "$ckpt" \
        --out "$DIR/$prefix.model" 2> "$DIR/$prefix.log" || rc=$?
  done
  if [ "$iterations" -lt 1 ]; then
    echo "FAIL: $prefix never crashed — injection did not fire" >&2
    exit 1
  fi
  echo "$prefix: $iterations resumes, final rc=$rc"
  return "$rc"
}

# 1. Ungoverned: the crash-looped run must finish cleanly (exit 0) and
#    reproduce the uninterrupted model and training-error line exactly.
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --rank 1 \
    --radius 1 --ell 2 --threads "$THREADS" \
    --out "$DIR/ref.model" 2> "$DIR/ref.log"
crash_loop "" plain
cmp "$DIR/ref.model" "$DIR/plain.model"
cmp "$DIR/ref.log" "$DIR/plain.log"

# 2. Governed: with a --max-work budget that trips mid-scan, the resumed
#    runs must land on the byte-identical degraded model, the same
#    "resource limit hit ... after N work units" line, and exit 3.
rc=0
"$CLI" learn --graph "$DIR/g.txt" --data "$DIR/d.txt" --rank 1 \
    --radius 1 --ell 2 --threads "$THREADS" --max-work 30000 \
    --out "$DIR/gref.model" 2> "$DIR/gref.log" || rc=$?
[ "$rc" -eq 3 ]
grep -q 'resource limit hit (budget-exhausted)' "$DIR/gref.log"

rc=0
crash_loop "--max-work 30000" governed || rc=$?
[ "$rc" -eq 3 ]
cmp "$DIR/gref.model" "$DIR/governed.model"
cmp "$DIR/gref.log" "$DIR/governed.log"

echo "CRASH_RESUME_TEST_OK threads=$THREADS"
