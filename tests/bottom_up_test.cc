#include <gtest/gtest.h>

#include "fo/enumerate.h"
#include "fo/parser.h"
#include "fo/printer.h"
#include "graph/generators.h"
#include "mc/bottom_up.h"
#include "mc/evaluator.h"
#include "util/rng.h"

namespace folearn {
namespace {

TEST(BottomUp, AtomRelations) {
  Graph g = MakePath(4);
  AddPeriodicColor(g, "Red", 2, 0);
  Relation edge = EvaluateBottomUp(g, MustParseFormula("E(a, b)"));
  EXPECT_EQ(edge.vars, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(edge.rows.size(), 6u);  // 3 edges, both orientations
  Relation red = EvaluateBottomUp(g, MustParseFormula("Red(a)"));
  EXPECT_EQ(red.rows.size(), 2u);
  Relation eq = EvaluateBottomUp(g, MustParseFormula("a = b"));
  EXPECT_EQ(eq.rows.size(), 4u);
}

TEST(BottomUp, BooleanConstants) {
  Graph g = MakePath(3);
  EXPECT_TRUE(EvaluateBottomUp(g, Formula::True()).IsBooleanTrue());
  EXPECT_FALSE(EvaluateBottomUp(g, Formula::False()).IsBooleanTrue());
}

TEST(BottomUp, JoinAndProjection) {
  Graph g = MakePath(5);
  // ∃z (E(a, z) ∧ E(z, b)): distance-2-or-0 pairs via a middle vertex.
  Relation two_steps = EvaluateBottomUp(
      g, MustParseFormula("exists z. (E(a, z) & E(z, b))"));
  EXPECT_EQ(two_steps.vars, (std::vector<std::string>{"a", "b"}));
  Assignment assignment;
  assignment.Bind("a", 0);
  assignment.Bind("b", 2);
  EXPECT_TRUE(two_steps.Contains(assignment));
  assignment.Unbind("b");
  assignment.Bind("b", 0);  // walk out and back
  EXPECT_TRUE(two_steps.Contains(assignment));
  assignment.Unbind("b");
  assignment.Bind("b", 3);
  EXPECT_FALSE(two_steps.Contains(assignment));
}

TEST(BottomUp, ForallSemantics) {
  // ∀y (E(x, y) → Red(y)): vertices all of whose neighbours are red.
  Graph g = MakePath(4);
  ColorId red = g.AddColor("Red");
  g.SetColor(0, red);
  g.SetColor(2, red);
  Relation result = EvaluateBottomUp(
      g, MustParseFormula("forall y. (E(x, y) -> Red(y))"));
  // Vertex 1: neighbours 0,2 both red ✓. Vertex 3: neighbour 2 red ✓.
  // Vertex 0: neighbour 1 not red ✗. Vertex 2: neighbours 1,3 not red ✗.
  EXPECT_EQ(result.rows,
            (std::vector<std::vector<Vertex>>{{1}, {3}}));
}

TEST(BottomUp, SentencesReduceToBooleans) {
  Graph g = MakeCycle(5);
  Relation has_edge =
      EvaluateBottomUp(g, MustParseFormula("exists x. exists y. E(x, y)"));
  EXPECT_TRUE(has_edge.IsBooleanTrue());
  Relation dominating = EvaluateBottomUp(
      g, MustParseFormula("exists x. forall y. (E(x, y) | x = y)"));
  EXPECT_FALSE(dominating.IsBooleanTrue());
}

TEST(BottomUp, AnswerQueryOrderAndPadding) {
  Graph g = MakePath(3);
  // Query with an extra output variable ranging over everything.
  std::vector<std::vector<Vertex>> answers =
      AnswerQuery(g, MustParseFormula("E(a, b)"), {"b", "a", "c"});
  // 4 directed edges × 3 values of c.
  EXPECT_EQ(answers.size(), 12u);
  for (const auto& row : answers) {
    EXPECT_TRUE(g.HasEdge(row[1], row[0]));
  }
  EXPECT_TRUE(std::is_sorted(answers.begin(), answers.end()));
}

TEST(BottomUp, SharedSubformulasEvaluateOnce) {
  Graph g = MakeCycle(6);
  FormulaRef atom = Formula::Edge("a", "b");
  FormulaRef shared = Formula::Or(
      Formula::And(atom, Formula::Color("Red", "a")),
      Formula::And(atom, Formula::Not(Formula::Color("Red", "b"))));
  g.AddColor("Red");
  EvalStats stats;
  EvaluateBottomUp(g, shared, &stats);
  // The edge atom scans 2·|E| once, colour atoms n each; the shared edge
  // atom must not be scanned twice: 12 + 6 + 6 = 24.
  EXPECT_EQ(stats.atom_evaluations, 24);
}

// The decisive property test: bottom-up agrees with the recursive
// evaluator on an enumerated slice of formulas over random graphs.
TEST(BottomUp, AgreesWithRecursiveEvaluatorOnEnumeratedSlice) {
  Rng rng(45);
  EnumerationOptions options;
  options.free_variables = {"x1", "x2"};
  options.colors = {"Red"};
  options.max_quantifier_rank = 1;
  options.max_boolean_depth = 1;
  options.max_count = 300;
  std::vector<FormulaRef> formulas = EnumerateFormulas(options);
  std::string vars[] = {"x1", "x2"};
  for (int trial = 0; trial < 3; ++trial) {
    Graph g = MakeErdosRenyi(5, 0.4, rng);
    AddRandomColors(g, {"Red"}, 0.5, rng);
    for (const FormulaRef& f : formulas) {
      Relation relation = EvaluateBottomUp(g, f);
      for (Vertex a = 0; a < g.order(); ++a) {
        for (Vertex b = 0; b < g.order(); ++b) {
          Vertex tuple[] = {a, b};
          Assignment assignment(vars, tuple);
          bool recursive = Evaluate(g, f, assignment);
          bool algebraic = relation.Contains(assignment);
          ASSERT_EQ(recursive, algebraic)
              << "trial=" << trial << " a=" << a << " b=" << b << " φ="
              << ToString(f);
        }
      }
    }
  }
}

TEST(BottomUp, DeepNestingMatchesRecursive) {
  Rng rng(46);
  Graph g = MakeRandomTree(7, rng);
  AddRandomColors(g, {"Red"}, 0.5, rng);
  const char* formulas[] = {
      "exists y. (E(x1, y) & exists z. (E(y, z) & Red(z)))",
      "forall y. (E(x1, y) -> exists z. (E(y, z) & !x1 = z))",
      "exists y. forall z. (E(y, z) -> E(x1, z) | x1 = z)",
  };
  std::string vars[] = {"x1"};
  for (const char* text : formulas) {
    FormulaRef f = MustParseFormula(text);
    Relation relation = EvaluateBottomUp(g, f);
    for (Vertex v = 0; v < g.order(); ++v) {
      Vertex tuple[] = {v};
      Assignment assignment(vars, tuple);
      EXPECT_EQ(Evaluate(g, f, assignment), relation.Contains(assignment))
          << text << " v=" << v;
    }
  }
}

}  // namespace
}  // namespace folearn
