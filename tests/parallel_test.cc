// Unit tests for the parallel execution subsystem (util/parallel.h) and
// its governor hooks: the thread pool, index coverage of ParallelFor, the
// deterministic argmin/first-hit reduction of ParallelSweep, the batch
// checkpoint arithmetic, random tuple access, and the ball cache.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/combinatorics.h"
#include "util/governor.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace folearn {
namespace {

TEST(EffectiveThreadsTest, ResolvesAndClamps) {
  EXPECT_GE(EffectiveThreads(0), 1);  // hardware concurrency, at least 1
  EXPECT_EQ(EffectiveThreads(1), 1);
  EXPECT_EQ(EffectiveThreads(7), 7);
  EXPECT_EQ(EffectiveThreads(100000), 256);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    const int64_t n = 1000;
    std::vector<std::atomic<int>> visits(n);
    for (auto& v : visits) v.store(0);
    ParallelFor(n, threads, /*chunk_size=*/7,
                [&](int64_t index, int) { ++visits[index]; });
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " threads "
                                     << threads;
    }
  }
}

TEST(ThreadPoolTest, WorkerIndicesAreWithinRange) {
  const int threads = 4;
  std::atomic<bool> bad{false};
  ParallelFor(100, threads, 1, [&](int64_t, int worker) {
    if (worker < 0 || worker >= threads) bad.store(true);
  });
  EXPECT_FALSE(bad.load());
}

TEST(ThreadPoolTest, NestedRunDegradesToSequentialWithoutDeadlock) {
  std::atomic<int> inner_runs{0};
  ThreadPool::Global().RunParallel(4, [&](int) {
    ThreadPool::Global().RunParallel(4, [&](int) { ++inner_runs; });
  });
  EXPECT_EQ(inner_runs.load(), 16);
}

TEST(ParallelSweepTest, ArgminIsExactAndTiesKeepLowestIndex) {
  // keys 0..n−1 mapped through a permutation-ish function with many ties.
  const int64_t n = 500;
  for (int threads : {1, 3, 8}) {
    SweepOptions options;
    options.threads = threads;
    options.chunk_size = 4;
    options.stop_on_hit = false;
    SweepOutcome out = ParallelSweep(
        n, options, [&](int64_t index, int) -> std::pair<double, bool> {
          return {static_cast<double>((index * 37 + 11) % 10), false};
        });
    EXPECT_EQ(out.evaluated, n);
    // Smallest key is 0; the first index with (37·i + 11) ≡ 0 (mod 10).
    int64_t expected = -1;
    for (int64_t i = 0; i < n; ++i) {
      if ((i * 37 + 11) % 10 == 0) {
        expected = i;
        break;
      }
    }
    EXPECT_EQ(out.best_index, expected) << "threads " << threads;
    EXPECT_EQ(out.best_key, 0.0);
  }
}

TEST(ParallelSweepTest, FirstHitIsExactForAnyThreadCount) {
  // Hits scattered from index 123 on; the minimum must always be found
  // even though later chunks may be claimed before earlier ones finish.
  const int64_t n = 400;
  for (int threads : {1, 2, 8}) {
    SweepOptions options;
    options.threads = threads;
    options.chunk_size = 2;
    options.stop_on_hit = true;
    SweepOutcome out = ParallelSweep(
        n, options, [&](int64_t index, int) -> std::pair<double, bool> {
          const bool hit = index >= 123 && index % 3 == 0;
          return {1.0, hit};
        });
    EXPECT_EQ(out.first_hit, 123) << "threads " << threads;
    EXPECT_GE(out.evaluated, 124);
  }
}

TEST(ParallelSweepTest, PassiveGovernorStopAborts) {
  GovernorLimits limits;
  limits.deadline_ms = 0;  // already elapsed
  ResourceGovernor governor(limits);
  SweepOptions options;
  options.threads = 4;
  options.governor = &governor;
  std::atomic<int64_t> calls{0};
  SweepOutcome out = ParallelSweep(
      1000, options, [&](int64_t, int) -> std::pair<double, bool> {
        ++calls;
        return {1.0, false};
      });
  EXPECT_TRUE(out.passive_stop);
  // Workers stop at their first poll; nothing is evaluated.
  EXPECT_EQ(out.evaluated, 0);
  EXPECT_EQ(calls.load(), 0);
  // The sweep itself never mutates the governor.
  EXPECT_EQ(governor.status(), RunStatus::kComplete);
}

// --- CheckpointBatch / DeterministicAllowance ---------------------------

// Runs `count` unit checkpoints one by one; returns how many passed.
int64_t LoopCheckpoints(ResourceGovernor& governor, int64_t count) {
  int64_t passes = 0;
  for (int64_t i = 0; i < count; ++i) {
    if (governor.Checkpoint()) ++passes;
  }
  return passes;
}

TEST(CheckpointBatchTest, MatchesSequentialLoopForDeterministicLimits) {
  for (int64_t budget : {1, 5, 10, 99}) {
    for (int64_t count : {1, 4, 5, 10, 11, 200}) {
      GovernorLimits limits;
      limits.max_work = budget;
      ResourceGovernor batch(limits);
      ResourceGovernor loop(limits);
      int64_t batch_passes = batch.CheckpointBatch(count);
      int64_t loop_passes = LoopCheckpoints(loop, count);
      EXPECT_EQ(batch_passes, loop_passes)
          << "budget " << budget << " count " << count;
      EXPECT_EQ(batch.status(), loop.status());
      EXPECT_EQ(batch.work_used(), loop.work_used());
      EXPECT_EQ(batch.checkpoints_passed(), loop.checkpoints_passed());
    }
  }
}

TEST(CheckpointBatchTest, MatchesSequentialLoopWithInjector) {
  for (int64_t trip : {1, 3, 7}) {
    for (int64_t count : {1, 2, 7, 8, 50}) {
      FaultInjector injector(trip, RunStatus::kDeadlineExceeded);
      ResourceGovernor batch(GovernorLimits{}, nullptr, &injector);
      ResourceGovernor loop(GovernorLimits{}, nullptr, &injector);
      EXPECT_EQ(batch.CheckpointBatch(count), LoopCheckpoints(loop, count))
          << "trip " << trip << " count " << count;
      EXPECT_EQ(batch.status(), loop.status());
      EXPECT_EQ(batch.work_used(), loop.work_used());
    }
  }
}

TEST(CheckpointBatchTest, InjectorWinsOverBudgetAtSameCheckpoint) {
  // Sequentially, the injector is consulted before the work budget; the
  // batch must latch the same status when both trip inside it.
  FaultInjector injector(5, RunStatus::kCancelled);
  GovernorLimits limits;
  limits.max_work = 4;
  ResourceGovernor batch(limits, nullptr, &injector);
  ResourceGovernor loop(limits, nullptr, &injector);
  batch.CheckpointBatch(20);
  LoopCheckpoints(loop, 20);
  EXPECT_EQ(batch.status(), loop.status());
  EXPECT_EQ(batch.status(), RunStatus::kCancelled);
}

TEST(CheckpointBatchTest, SplitBatchesEqualOneBatch) {
  GovernorLimits limits;
  limits.max_work = 37;
  ResourceGovernor split(limits);
  ResourceGovernor whole(limits);
  int64_t split_passes = split.CheckpointBatch(10);
  split_passes += split.CheckpointBatch(20);
  split_passes += split.CheckpointBatch(30);
  EXPECT_EQ(split_passes, whole.CheckpointBatch(60));
  EXPECT_EQ(split.status(), whole.status());
  EXPECT_EQ(split.work_used(), whole.work_used());
}

TEST(DeterministicAllowanceTest, CountsExactRemainingPasses) {
  GovernorLimits limits;
  limits.max_work = 10;
  FaultInjector injector(8);
  ResourceGovernor governor(limits, nullptr, &injector);
  EXPECT_EQ(governor.DeterministicAllowance(), 7);  // injector is tighter
  EXPECT_TRUE(governor.Checkpoint(1));
  EXPECT_EQ(governor.DeterministicAllowance(), 6);
  // Exactly the allowance passes, then the next call trips.
  EXPECT_EQ(governor.CheckpointBatch(6), 6);
  EXPECT_EQ(governor.status(), RunStatus::kComplete);
  EXPECT_FALSE(governor.Checkpoint());
  EXPECT_EQ(governor.DeterministicAllowance(), 0);
}

TEST(DeterministicAllowanceTest, NoDeterministicLimitIsUnbounded) {
  ResourceGovernor unlimited;
  EXPECT_EQ(unlimited.DeterministicAllowance(), kNoLimit);
  GovernorLimits limits;
  limits.deadline_ms = 1000000;  // deadline alone is not deterministic
  ResourceGovernor deadline_only(limits);
  EXPECT_EQ(deadline_only.DeterministicAllowance(), kNoLimit);
}

TEST(PassiveLimitHitTest, ReflectsDeadlineCancelAndLatch) {
  ResourceGovernor unlimited;
  EXPECT_FALSE(unlimited.PassiveLimitHit());

  GovernorLimits elapsed;
  elapsed.deadline_ms = 0;
  ResourceGovernor tripped(elapsed);
  EXPECT_TRUE(tripped.PassiveLimitHit());
  EXPECT_EQ(tripped.status(), RunStatus::kComplete);  // read-only poll

  std::atomic<bool> cancel{false};
  ResourceGovernor cancellable(GovernorLimits{}, &cancel);
  EXPECT_FALSE(cancellable.PassiveLimitHit());
  cancel.store(true);
  EXPECT_TRUE(cancellable.PassiveLimitHit());
}

// --- NthTuple -----------------------------------------------------------

TEST(NthTupleTest, MatchesForEachTupleOrder) {
  for (int64_t base : {1, 2, 5}) {
    for (int length : {0, 1, 3}) {
      int64_t index = 0;
      ForEachTuple(base, length, [&](const std::vector<int64_t>& tuple) {
        EXPECT_EQ(NthTuple(base, length, index), tuple)
            << "base " << base << " length " << length << " index " << index;
        ++index;
        return true;
      });
      EXPECT_EQ(index, SaturatingPow(base, length));
    }
  }
}

// --- BallCache ----------------------------------------------------------

TEST(BallCacheTest, TupleBallMatchesMultiSourceBall) {
  Rng rng(42);
  Graph graph = MakeRandomTree(40, rng);
  AddRandomColors(graph, {"Red"}, 0.3, rng);
  BallCache cache(graph);
  for (int radius : {0, 1, 2, 4}) {
    for (Vertex v = 0; v < graph.order(); v += 3) {
      std::vector<Vertex> tuple = {v, (v + 7) % graph.order(),
                                   (v + 13) % graph.order()};
      EXPECT_EQ(cache.TupleBall(tuple, radius), Ball(graph, tuple, radius))
          << "v " << v << " radius " << radius;
    }
  }
  EXPECT_GT(cache.hits(), 0);
  EXPECT_GT(cache.misses(), 0);
}

TEST(BallCacheTest, RepeatLookupsHitTheCache) {
  Rng rng(7);
  Graph graph = MakeRandomTree(20, rng);
  BallCache cache(graph);
  std::vector<Vertex> tuple = {0, 5};
  cache.TupleBall(tuple, 2);
  EXPECT_EQ(cache.misses(), 2);
  cache.TupleBall(tuple, 2);
  EXPECT_EQ(cache.misses(), 2);  // no new BFS
  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.cached_balls(), 2);
}

}  // namespace
}  // namespace folearn
