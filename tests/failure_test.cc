// Failure-injection tests: every module's preconditions abort loudly
// instead of corrupting state. (The library is exception-free; CHECK
// violations are the error contract, so the contract itself is under
// test.)

#include <gtest/gtest.h>

#include "db/database.h"
#include "fo/formula.h"
#include "fo/parser.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "learn/erm.h"
#include "learn/vc.h"
#include "mc/evaluator.h"
#include "nd/covering.h"
#include "nd/wcol.h"
#include "learn/model_io.h"
#include "types/counting_type.h"
#include "types/type.h"
#include "util/combinatorics.h"
#include "util/governor.h"
#include "util/rng.h"

namespace folearn {
namespace {

TEST(FailureGraph, VertexOutOfRange) {
  Graph g(3);
  EXPECT_DEATH(g.AddEdge(0, 3), "out of range");
  EXPECT_DEATH(g.AddEdge(-1, 0), "out of range");
  EXPECT_DEATH(g.HasEdge(0, 5), "out of range");
  EXPECT_DEATH(g.SetColor(0, 0), "");  // no colours declared
}

TEST(FailureGraph, SelfLoopRejected) {
  Graph g(2);
  EXPECT_DEATH(g.AddEdge(1, 1), "irreflexive");
}

TEST(FailureGraph, DuplicateColorRejected) {
  Graph g(1);
  g.AddColor("C");
  EXPECT_DEATH(g.AddColor("C"), "duplicate");
}

TEST(FailureGraph, MapTupleOutsideSubgraph) {
  Graph g = MakePath(5);
  Vertex keep[] = {0, 1};
  InducedSubgraph sub = BuildInducedSubgraph(g, keep);
  Vertex outside[] = {4};
  EXPECT_DEATH(sub.MapTuple(outside), "not in induced subgraph");
}

TEST(FailureFormula, EmptyNamesRejected) {
  EXPECT_DEATH(Formula::Color("", "x"), "");
  EXPECT_DEATH(Formula::Edge("x", ""), "");
  EXPECT_DEATH(Formula::Exists("", Formula::Edge("x", "y")), "");
  EXPECT_DEATH(Formula::Color("E", "x"), "reserved");
}

TEST(FailureParser, MustParseDiesOnGarbage) {
  EXPECT_DEATH(MustParseFormula("exists ."), "parse error");
}

TEST(FailureEvaluator, QuantifierOnEmptyGraph) {
  // Note: "exists x. x = x" folds to `true` at construction and never
  // reaches the evaluator — a real quantifier body is needed.
  Graph empty(0);
  EXPECT_DEATH(EvaluateSentence(empty,
                                MustParseFormula("exists x. exists y. E(x, y)")),
               "empty graph");
}

TEST(FailureTypes, NegativeRankRejected) {
  Graph g = MakePath(3);
  TypeRegistry registry(g.vocabulary());
  Vertex tuple[] = {0};
  EXPECT_DEATH(ComputeType(g, tuple, -1, &registry), "");
}

TEST(FailureTypes, CountingRegistryZeroCapRejected) {
  Graph g = MakePath(3);
  EXPECT_DEATH(CountingTypeRegistry(g.vocabulary(), 0), "");
}

TEST(FailureCovering, EmptyCentersRejected) {
  Graph g = MakePath(4);
  EXPECT_DEATH(GreedyBallCovering(g, {}, 1), "");
  Vertex x[] = {0};
  EXPECT_DEATH(GreedyBallCovering(g, x, 0), "");
}

TEST(FailureWcol, BadOrderRejected) {
  Graph g = MakePath(4);
  std::vector<Vertex> short_order = {0, 1};
  EXPECT_DEATH(WeakColoringNumber(g, short_order, 1), "");
}

TEST(FailureDatabase, SchemaViolations) {
  Schema schema;
  schema.AddRelation("R", 2);
  EXPECT_DEATH(schema.AddRelation("R", 1), "duplicate");
  EXPECT_DEATH(schema.AddRelation("S", 0), "");
  EXPECT_DEATH(Database(schema, -1), "");
}

TEST(FailureErm, MixedArityExamplesRejected) {
  Graph g = MakePath(4);
  TrainingSet mixed = {{{0}, true}, {{1, 2}, false}};
  EXPECT_DEATH(TypeMajorityErm(g, mixed, {}, {1, 1}), "");
}

TEST(FailureCombinatorics, BadArguments) {
  EXPECT_DEATH(ForEachTuple(0, 2, [](const auto&) { return true; }), "");
  EXPECT_DEATH(ForEachSubset(5, -1, [](const auto&) { return true; }), "");
  EXPECT_DEATH(RamseyUpperBound(0, 1, 1), "");
}

TEST(FailureRng, EmptyChooseRejected) {
  Rng rng(1);
  std::vector<int> empty;
  EXPECT_DEATH(rng.Choose(empty), "");
  EXPECT_DEATH(rng.UniformIndex(0), "");
}

TEST(FailureVc, RequiresPositiveK) {
  Graph g = MakePath(3);
  EXPECT_DEATH(ComputeVcDimension(g, 0, {}), "");
}

TEST(FailureGovernor, NegativeDeadlineRejected) {
  GovernorLimits limits;
  limits.deadline_ms = -5;
  EXPECT_DEATH(ResourceGovernor governor(limits), "negative deadline");
}

TEST(FailureGovernor, NonPositiveWorkBudgetRejected) {
  GovernorLimits zero;
  zero.max_work = 0;
  EXPECT_DEATH(ResourceGovernor governor(zero),
               "work budget must be positive");
  GovernorLimits negative;
  negative.max_work = -7;  // any negative value except the kNoLimit sentinel
  EXPECT_DEATH(ResourceGovernor governor(negative),
               "work budget must be positive");
}

TEST(FailureGovernor, InjectorPreconditions) {
  EXPECT_DEATH(FaultInjector injector(0), "positive checkpoint");
  EXPECT_DEATH(FaultInjector injector(-3), "positive checkpoint");
  EXPECT_DEATH(FaultInjector injector(1, RunStatus::kComplete),
               "cannot inject");
}

// Regression pin: an injected trip at a fixed checkpoint N must always
// yield the same best-so-far hypothesis — anytime degradation is part of
// the deterministic contract, not an accident of timing.
TEST(FailureGovernor, InjectedTripIsReproducible) {
  Graph g = MakePath(9);
  AddPeriodicColor(g, "Red", 3, 0);
  TrainingSet examples;
  for (Vertex v = 0; v < g.order(); ++v) {
    examples.push_back({{v}, v % 3 == 1});
  }
  auto run = [&]() {
    FaultInjector injector(7);
    ResourceGovernor governor(GovernorLimits{}, nullptr, &injector);
    ErmOptions options;
    options.governor = &governor;
    return BruteForceErm(g, examples, 1, options);
  };
  ErmResult first = run();
  ErmResult second = run();
  EXPECT_TRUE(IsInterrupted(first.status));
  EXPECT_EQ(first.status, second.status);
  EXPECT_EQ(first.training_error, second.training_error);
  EXPECT_EQ(HypothesisToText(first.hypothesis.ToExplicit()),
            HypothesisToText(second.hypothesis.ToExplicit()));
}

}  // namespace
}  // namespace folearn
