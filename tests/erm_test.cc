#include <gtest/gtest.h>

#include "fo/parser.h"
#include "fo/printer.h"
#include "graph/generators.h"
#include "learn/erm.h"
#include "util/rng.h"

namespace folearn {
namespace {

// Labels all k-tuples of `graph` by `query` (over x1..xk).
TrainingSet LabelAll(const Graph& graph, const std::string& query, int k) {
  FormulaRef f = MustParseFormula(query);
  std::vector<std::string> vars = QueryVars(k);
  return LabelByQuery(graph, f, vars, AllTuples(graph.order(), k));
}

TEST(TypeMajorityErm, PerfectFitOnDefinableConcept) {
  Graph g = MakePath(10);
  AddPeriodicColor(g, "Red", 3, 0);
  // Target: x has a red neighbour (rank 1).
  TrainingSet examples = LabelAll(g, "exists z. (E(x1, z) & Red(z))", 1);
  ErmResult result = TypeMajorityErm(g, examples, {}, {1, -1});
  EXPECT_EQ(result.training_error, 0.0);
  EXPECT_EQ(result.hypothesis.Error(g, examples), 0.0);
  EXPECT_GT(result.distinct_types_seen, 1);
}

TEST(TypeMajorityErm, ErrorMatchesMinorityCounts) {
  // Two examples with the same tuple and contradictory labels force
  // exactly one error.
  Graph g = MakePath(5);
  TrainingSet examples = {{{2}, true}, {{2}, false}, {{0}, true}};
  ErmResult result = TypeMajorityErm(g, examples, {}, {1, -1});
  EXPECT_DOUBLE_EQ(result.training_error, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(result.hypothesis.Error(g, examples), 1.0 / 3.0);
}

TEST(TypeMajorityErm, TieRejectsType) {
  Graph g = MakePath(3);
  TrainingSet examples = {{{1}, true}, {{1}, false}};
  ErmResult result = TypeMajorityErm(g, examples, {}, {0, 0});
  EXPECT_TRUE(result.hypothesis.accepted.empty());
  EXPECT_DOUBLE_EQ(result.training_error, 0.5);
}

TEST(TypeMajorityErm, EmptyTrainingSetIsPerfect) {
  Graph g = MakePath(3);
  ErmResult result = TypeMajorityErm(g, {}, {}, {1, -1});
  EXPECT_EQ(result.training_error, 0.0);
}

TEST(TypeMajorityErm, ExplicitFormulaAgreesWithTypeClassifier) {
  Rng rng(17);
  Graph g = MakeRandomTree(12, rng);
  AddRandomColors(g, {"Red"}, 0.4, rng);
  TrainingSet examples = LabelAll(g, "Red(x1) | exists z. (E(x1, z) & Red(z))", 1);
  ErmResult result = TypeMajorityErm(g, examples, {}, {1, 2});
  Hypothesis explicit_h = result.hypothesis.ToExplicit();
  EXPECT_LE(explicit_h.formula->quantifier_rank(),
            1 + 3);  // rank + O(log radius)
  for (const LabeledExample& example : examples) {
    EXPECT_EQ(explicit_h.Classify(g, example.tuple),
              result.hypothesis.Classify(g, example.tuple))
        << ToString(explicit_h.formula);
  }
}

TEST(TypeMajorityErm, ParametersEnableSeparation) {
  // Target: x is within distance 1 of the marked hub w. Without parameters
  // the two star leaves are indistinguishable; with w̄ = (hub) the concept
  // is rank-0 definable on the combined tuple.
  Graph g = MakeStar(6);          // hub = 0
  Graph h = DisjointCopies(g, 2);  // two stars: hubs 0 and 7
  // Positives: leaves of star 0; negatives: leaves of star 1.
  TrainingSet examples;
  for (Vertex v = 1; v <= 6; ++v) examples.push_back({{v}, true});
  for (Vertex v = 8; v <= 13; ++v) examples.push_back({{v}, false});
  // Parameter-free: leaves all share one local type → majority everything.
  ErmResult without = TypeMajorityErm(h, examples, {}, {1, 2});
  EXPECT_GT(without.training_error, 0.4);
  // Parameter = hub of star 0.
  Vertex params[] = {0};
  ErmResult with = TypeMajorityErm(h, examples, params, {1, 2});
  EXPECT_EQ(with.training_error, 0.0);
}

TEST(BruteForceErm, FindsDiscriminatingParameter) {
  Graph g = DisjointCopies(MakeStar(5), 2);
  TrainingSet examples;
  for (Vertex v = 1; v <= 5; ++v) examples.push_back({{v}, true});
  for (Vertex v = 7; v <= 11; ++v) examples.push_back({{v}, false});
  ErmResult result = BruteForceErm(g, examples, 1, {1, 2});
  EXPECT_EQ(result.training_error, 0.0);
  EXPECT_EQ(result.hypothesis.parameters.size(), 1u);
}

TEST(BruteForceErm, EllZeroEqualsFixedEmptyParameters) {
  Graph g = MakePath(8);
  AddPeriodicColor(g, "Red", 2, 0);
  TrainingSet examples = LabelAll(g, "Red(x1)", 1);
  ErmResult brute = BruteForceErm(g, examples, 0, {1, -1});
  ErmResult fixed = TypeMajorityErm(g, examples, {}, {1, -1});
  EXPECT_EQ(brute.training_error, fixed.training_error);
  EXPECT_EQ(brute.parameter_tuples_tried, 1);
}

TEST(BruteForceErm, NeverWorseThanAnySingleParameter) {
  Rng rng(23);
  Graph g = MakeRandomTree(9, rng);
  AddRandomColors(g, {"Red"}, 0.5, rng);
  std::vector<std::vector<Vertex>> tuples = SampleTuples(g.order(), 1, 30, rng);
  TrainingSet examples =
      LabelByQuery(g, MustParseFormula("exists z. (E(x1, z) & Red(z))"),
                   QueryVars(1), tuples);
  FlipLabels(examples, 0.15, rng);
  ErmOptions options{1, 2};
  ErmResult best = BruteForceErm(g, examples, 1, options);
  for (Vertex w = 0; w < g.order(); ++w) {
    Vertex params[] = {w};
    ErmResult candidate = TypeMajorityErm(g, examples, params, options);
    EXPECT_LE(best.training_error, candidate.training_error) << "w=" << w;
  }
}

// E9's core assertion in miniature: the type-majority optimum lower-bounds
// every explicitly enumerated formula of the same rank (Corollary 6).
TEST(TypeMajorityErm, LowerBoundsEnumeratedFormulas) {
  Graph g = MakePath(6);
  AddPeriodicColor(g, "Red", 2, 0);
  Rng rng(31);
  std::vector<std::vector<Vertex>> tuples = SampleTuples(g.order(), 1, 40, rng);
  TrainingSet examples =
      LabelByQuery(g, MustParseFormula("Red(x1) & exists z. E(x1, z)"),
                   QueryVars(1), tuples);
  FlipLabels(examples, 0.2, rng);

  ErmResult type_best = TypeMajorityErm(g, examples, {}, {1, -1});

  EnumerationOptions enumeration;
  enumeration.colors = {"Red"};
  enumeration.max_quantifier_rank = 1;
  enumeration.max_boolean_depth = 1;
  enumeration.max_count = 2000;
  EnumerationErmResult formula_best = EnumerationErm(g, examples, 0,
                                                     enumeration);
  EXPECT_LE(type_best.training_error, formula_best.training_error + 1e-12);
}

TEST(EnumerationErm, SolvesTinyRealizableInstanceExactly) {
  Graph g = MakePath(4);
  AddPeriodicColor(g, "Red", 2, 1);
  TrainingSet examples = LabelAll(g, "Red(x1)", 1);
  EnumerationOptions enumeration;
  enumeration.colors = {"Red"};
  enumeration.max_quantifier_rank = 0;
  enumeration.max_count = 200;
  EnumerationErmResult result = EnumerationErm(g, examples, 0, enumeration);
  EXPECT_EQ(result.training_error, 0.0);
  EXPECT_EQ(ToString(result.hypothesis.formula), "Red(x1)");
}

TEST(Dataset, CountAndSplitAndFlip) {
  Graph g = MakePath(6);
  TrainingSet examples = LabelAll(g, "exists z. E(x1, z)", 1);
  auto [pos, neg] = CountLabels(examples);
  EXPECT_EQ(pos, 6);
  EXPECT_EQ(neg, 0);
  Rng rng(3);
  FlipLabels(examples, 1.0, rng);
  auto [pos2, neg2] = CountLabels(examples);
  EXPECT_EQ(pos2, 0);
  EXPECT_EQ(neg2, 6);
  auto [train, test] = SplitTrainTest(examples, 0.5, rng);
  EXPECT_EQ(train.size(), 3u);
  EXPECT_EQ(test.size(), 3u);
}

TEST(Dataset, AllTuplesPairs) {
  std::vector<std::vector<Vertex>> tuples = AllTuples(3, 2);
  EXPECT_EQ(tuples.size(), 9u);
  EXPECT_EQ(tuples[0], (std::vector<Vertex>{0, 0}));
  EXPECT_EQ(tuples[5], (std::vector<Vertex>{1, 2}));
}

// Binary classification of PAIRS (k = 2).
TEST(TypeMajorityErm, PairQueries) {
  Graph g = MakePath(7);
  // Target: dist(x1, x2) ≤ 2 — rank-1 definable (common neighbour or edge
  // or equal).
  TrainingSet examples =
      LabelAll(g, "x1 = x2 | E(x1, x2) | exists z. (E(x1, z) & E(z, x2))", 2);
  ErmResult result = TypeMajorityErm(g, examples, {}, {1, -1});
  EXPECT_EQ(result.training_error, 0.0);
  EXPECT_EQ(result.hypothesis.k, 2);
}

}  // namespace
}  // namespace folearn
