// Tests for the folearnd server stack: protocol round trips, warm-state
// request handling against the direct library calls, multi-tenant
// concurrency determinism, admission control (shedding), deadline
// degradation, graceful shutdown, durability (journaled sessions and
// model handles surviving a restart), request-id dedup, idle-TTL
// eviction with lazy re-warm, client-disconnect robustness, and the
// retrying client. Runs the server in-process on a unique unix socket
// per fixture; the TSan CI job runs this whole file under
// ThreadSanitizer.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "graph/fog.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "learn/erm.h"
#include "learn/model_io.h"
#include "mc/plan_cache.h"
#include "fo/parser.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "util/rng.h"

namespace folearn {
namespace {

std::string UniqueSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/folearn_server_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

// A small coloured graph and a training set labelled "is Red", the same
// shape as the CLI pipeline test.
struct TestProblem {
  Graph graph = Graph(0);
  TrainingSet data;
  std::string graph_text;
  std::string data_text;
};

TestProblem MakeProblem(int n, int seed) {
  Rng rng(seed);
  TestProblem problem;
  problem.graph = MakeRandomTree(n, rng);
  ColorId red = problem.graph.AddColor("Red");
  for (Vertex v = 0; v < n; v += 3) problem.graph.SetColor(v, red);
  for (Vertex v = 0; v < n; ++v) {
    problem.data.push_back({{v}, problem.graph.HasColor(v, red)});
  }
  problem.graph_text = ToText(problem.graph);
  problem.data_text = TrainingSetToText(problem.data);
  return problem;
}

// A throwaway state directory for durability tests, removed on teardown.
std::string MakeStateDir() {
  static std::atomic<int> counter{0};
  std::string dir = "/tmp/folearn_server_test_state_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1));
  return dir;
}

void RemoveTreeBestEffort(const std::string& dir) {
  if (dir.empty() || dir.rfind("/tmp/", 0) != 0) return;
  std::string cmd = "rm -rf '" + dir + "'";
  [[maybe_unused]] int rc = std::system(cmd.c_str());
}

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options) {
    options.socket_path = UniqueSocketPath();
    options_ = options;
    server_ = std::make_unique<Server>(std::move(options));
    ASSERT_TRUE(server_->Start().ok());
    serve_thread_ = std::thread([this] { server_->Serve(); });
  }

  // Stops the daemon and brings up a fresh Server instance on the *same*
  // socket path and state dir — the in-process analogue of a daemon
  // restart.
  void RestartServer() {
    server_->Shutdown();
    serve_thread_.join();
    server_ = std::make_unique<Server>(ServerOptions(options_));
    ASSERT_TRUE(server_->Start().ok());
    serve_thread_ = std::thread([this] { server_->Serve(); });
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Shutdown();
      if (serve_thread_.joinable()) serve_thread_.join();
    }
    RemoveTreeBestEffort(options_.state_dir);
  }

  Client MustConnect() {
    StatusOr<Client> client = Client::Connect(server_->socket_path());
    EXPECT_TRUE(client.ok()) << client.status().message();
    return *std::move(client);
  }

  // A raw connected socket, bypassing Client, for torn-frame tests.
  int RawConnect() {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, server_->socket_path().c_str(),
                server_->socket_path().size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    return fd;
  }

  ServerOptions options_;
  std::unique_ptr<Server> server_;
  std::thread serve_thread_;
};

TEST(ProtocolTest, MessageEncodeDecodeRoundTrip) {
  Message message;
  message.Set("op", "learn");
  message.Set("data", std::string("binary\0bytes\xff", 13));
  message.Set("empty", "");
  StatusOr<Message> decoded = DecodeMessage(EncodeMessage(message));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->fields.size(), 3u);
  EXPECT_EQ(decoded->Get("op"), "learn");
  EXPECT_EQ(decoded->Get("data"), std::string("binary\0bytes\xff", 13));
  EXPECT_TRUE(decoded->Has("empty"));
}

TEST(ProtocolTest, DecodeRejectsTruncatedPayloads) {
  Message message;
  message.Set("key", "value");
  std::string payload = EncodeMessage(message);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    StatusOr<Message> decoded = DecodeMessage(payload.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
  }
  std::string trailing = payload + "x";
  EXPECT_FALSE(DecodeMessage(trailing).ok());
}

TEST(PlanCacheTest, HitsAndBudgetInvariant) {
  PlanCache cache(/*max_bytes=*/16 * 1024);
  FormulaRef sentence = MustParseFormula("exists x. exists y. E(x, y)");
  EvalOptions options;
  CachedPlan first = cache.GetOrCompile(sentence, {}, options);
  CachedPlan second = cache.GetOrCompile(sentence, {}, options);
  EXPECT_EQ(first.plan.get(), second.plan.get());
  EXPECT_EQ(first.bytecode.get(), second.bytecode.get());
  EXPECT_NE(first.bytecode, nullptr);  // default engine is the VM
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  // Distinct formulas fill the budget; the invariant holds throughout.
  for (int i = 0; i < 200; ++i) {
    std::string text = "exists x. exists y" + std::to_string(i) +
                       ". E(x, y" + std::to_string(i) + ")";
    cache.GetOrCompile(MustParseFormula(text), {}, options);
    ASSERT_LE(cache.bytes(), cache.max_bytes());
  }
  EXPECT_GT(cache.evictions(), 0);
}

TEST(PlanCacheTest, EngineKeyedEntriesDoNotCollide) {
  PlanCache cache;
  FormulaRef sentence = MustParseFormula("exists x. E(x, x)");
  EvalOptions vm;
  vm.engine = EvalEngine::kVm;
  EvalOptions tree;
  tree.engine = EvalEngine::kCompiled;
  CachedPlan vm_entry = cache.GetOrCompile(sentence, {}, vm);
  CachedPlan tree_entry = cache.GetOrCompile(sentence, {}, tree);
  // Same formula, different engines: two distinct entries, the VM one
  // carrying bytecode, the tree one not — neither evicts or shadows the
  // other, and each is billed its own bytes.
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_EQ(cache.entries(), 2);
  EXPECT_NE(vm_entry.plan.get(), tree_entry.plan.get());
  EXPECT_NE(vm_entry.bytecode, nullptr);
  EXPECT_EQ(tree_entry.bytecode, nullptr);
  // An options fingerprint change is a distinct entry too.
  EvalOptions vm_mcf = vm;
  vm_mcf.missing_color_is_false = true;
  cache.GetOrCompile(sentence, {}, vm_mcf);
  EXPECT_EQ(cache.misses(), 3);
  EXPECT_EQ(cache.entries(), 3);
  // Repeats of every variant hit.
  cache.GetOrCompile(sentence, {}, vm);
  cache.GetOrCompile(sentence, {}, tree);
  cache.GetOrCompile(sentence, {}, vm_mcf);
  EXPECT_EQ(cache.hits(), 3);
}

TEST(PlanCacheTest, OversizePlanServedUncached) {
  PlanCache cache(/*max_bytes=*/1);
  FormulaRef sentence = MustParseFormula("exists x. E(x, x)");
  CachedPlan entry = cache.GetOrCompile(sentence, {}, EvalOptions{});
  ASSERT_NE(entry.plan, nullptr);
  EXPECT_EQ(cache.entries(), 0);
  EXPECT_EQ(cache.bytes(), 0);
  EXPECT_EQ(cache.oversize_misses(), 1);
}

TEST_F(ServerTest, PingRoundTrip) {
  StartServer(ServerOptions{});
  Client client = MustConnect();
  Message request;
  request.Set("op", "ping");
  request.Set("payload", "hello");
  StatusOr<Message> response = client.Call(request);
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_EQ(response->Get("status"), kStatusOk);
  EXPECT_EQ(response->Get("payload"), "hello");
  EXPECT_EQ(ResponseExitCode(*response), 0);
}

TEST_F(ServerTest, LearnEvaluateQueryMatchDirectLibraryCalls) {
  StartServer(ServerOptions{});
  TestProblem problem = MakeProblem(30, 5);
  Client client = MustConnect();
  StatusOr<uint64_t> session = client.LoadGraph(problem.graph_text);
  ASSERT_TRUE(session.ok()) << session.status().message();

  // learn over the wire == BruteForceErm called directly.
  Message learn;
  learn.Set("op", "learn");
  learn.Set("session", std::to_string(*session));
  learn.Set("data", problem.data_text);
  learn.Set("rank", "1");
  learn.Set("radius", "1");
  StatusOr<Message> learned = client.Call(learn);
  ASSERT_TRUE(learned.ok());
  ASSERT_EQ(learned->Get("status"), kStatusOk) << learned->Get("error");

  ErmOptions options;
  options.rank = 1;
  options.radius = 1;
  ErmResult direct = BruteForceErm(problem.graph, problem.data, 0, options);
  EXPECT_EQ(learned->Get("model"),
            HypothesisToText(direct.hypothesis.ToExplicit()));
  EXPECT_EQ(learned->Get("training-error"), "0.000000");

  // evaluate the learned model over the wire == its direct error (0).
  Message evaluate;
  evaluate.Set("op", "evaluate");
  evaluate.Set("session", std::to_string(*session));
  evaluate.Set("model", learned->Get("model"));
  evaluate.Set("data", problem.data_text);
  StatusOr<Message> evaluated = client.Call(evaluate);
  ASSERT_TRUE(evaluated.ok());
  ASSERT_EQ(evaluated->Get("status"), kStatusOk) << evaluated->Get("error");
  EXPECT_EQ(evaluated->Get("error"), "0.000000");

  // query: a red vertex exists; repeated queries hit the warm memo and
  // the shared plan cache.
  for (int i = 0; i < 3; ++i) {
    Message query;
    query.Set("op", "query");
    query.Set("session", std::to_string(*session));
    query.Set("sentence", "exists x. Red(x)");
    StatusOr<Message> answered = client.Call(query);
    ASSERT_TRUE(answered.ok());
    ASSERT_EQ(answered->Get("status"), kStatusOk) << answered->Get("error");
    EXPECT_EQ(answered->Get("result"), "true");
  }
  ServerStats stats = server_->Snapshot();
  EXPECT_GE(stats.plan_hits, 2);  // the two repeated query compilations
  EXPECT_TRUE(client.CloseSession(*session).ok());
}

TEST_F(ServerTest, SecondLearnReusesWarmRegistryAndBallCache) {
  StartServer(ServerOptions{});
  TestProblem problem = MakeProblem(40, 7);
  Client client = MustConnect();
  StatusOr<uint64_t> session = client.LoadGraph(problem.graph_text);
  ASSERT_TRUE(session.ok());
  Message learn;
  learn.Set("op", "learn");
  learn.Set("session", std::to_string(*session));
  learn.Set("data", problem.data_text);
  learn.Set("rank", "1");
  learn.Set("radius", "1");
  StatusOr<Message> cold = client.Call(learn);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold->Get("status"), kStatusOk);
  StatusOr<Message> warm = client.Call(learn);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->Get("status"), kStatusOk);
  // Warm state must never change answers — model bytes are identical.
  EXPECT_EQ(cold->Get("model"), warm->Get("model"));
  EXPECT_EQ(cold->Get("training-error"), warm->Get("training-error"));
}

// The multi-tenant determinism contract: N clients with their own
// sessions, each running an interleaved learn/evaluate/query stream
// concurrently, get byte-identical results to the same streams executed
// sequentially against a fresh server.
TEST_F(ServerTest, ConcurrentSessionsMatchSequentialBaselines) {
  constexpr int kClients = 4;
  constexpr int kRounds = 3;

  // Sequential baselines, computed directly from the library.
  std::vector<TestProblem> problems;
  std::vector<std::string> baseline_models;
  for (int c = 0; c < kClients; ++c) {
    problems.push_back(MakeProblem(24 + 4 * c, 100 + c));
    ErmOptions options;
    options.rank = 1;
    options.radius = 1;
    ErmResult direct =
        BruteForceErm(problems[c].graph, problems[c].data, 0, options);
    baseline_models.push_back(
        HypothesisToText(direct.hypothesis.ToExplicit()));
  }

  StartServer(ServerOptions{});
  std::vector<std::thread> workers;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back([this, c, &problems, &baseline_models, &failures] {
      StatusOr<Client> client = Client::Connect(server_->socket_path());
      if (!client.ok()) {
        failures[c] = client.status().message();
        return;
      }
      StatusOr<uint64_t> session =
          client->LoadGraph(problems[c].graph_text);
      if (!session.ok()) {
        failures[c] = session.status().message();
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        Message learn;
        learn.Set("op", "learn");
        learn.Set("session", std::to_string(*session));
        learn.Set("data", problems[c].data_text);
        learn.Set("rank", "1");
        learn.Set("radius", "1");
        StatusOr<Message> learned = client->Call(learn);
        if (!learned.ok() || learned->Get("status") != kStatusOk ||
            learned->Get("model") != baseline_models[c]) {
          failures[c] = "learn mismatch in round " + std::to_string(round);
          return;
        }
        Message evaluate;
        evaluate.Set("op", "evaluate");
        evaluate.Set("session", std::to_string(*session));
        evaluate.Set("model", learned->Get("model"));
        evaluate.Set("data", problems[c].data_text);
        StatusOr<Message> evaluated = client->Call(evaluate);
        if (!evaluated.ok() ||
            evaluated->Get("error") != learned->Get("training-error")) {
          failures[c] = "evaluate mismatch in round " + std::to_string(round);
          return;
        }
        Message query;
        query.Set("op", "query");
        query.Set("session", std::to_string(*session));
        query.Set("sentence", "exists x. Red(x)");
        StatusOr<Message> answered = client->Call(query);
        if (!answered.ok() || answered->Get("result") != "true") {
          failures[c] = "query mismatch in round " + std::to_string(round);
          return;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }
}

// Overload: with max_inflight=1 and one slow request holding the slot,
// concurrent requests are shed with a healthy response — never a dropped
// or hung connection.
TEST_F(ServerTest, OverloadShedsInsteadOfHangingOrSevering) {
  ServerOptions options;
  options.max_inflight = 1;
  StartServer(std::move(options));
  // The slow leg must reliably occupy the single slot while the quick
  // client hammers: periodic labels prevent the zero-error early stop,
  // so the learn scans all n^ell candidates at radius 2.
  TestProblem slow_problem = MakeProblem(120, 11);
  for (Vertex v = 0; v < 120; ++v) {
    slow_problem.data[v].label = v % 7 < 3;
  }
  slow_problem.data_text = TrainingSetToText(slow_problem.data);
  TestProblem quick_problem = MakeProblem(10, 12);

  Client slow_client = MustConnect();
  StatusOr<uint64_t> slow_session =
      slow_client.LoadGraph(slow_problem.graph_text);
  ASSERT_TRUE(slow_session.ok());
  Client quick_client = MustConnect();
  StatusOr<uint64_t> quick_session =
      quick_client.LoadGraph(quick_problem.graph_text);
  ASSERT_TRUE(quick_session.ok());

  std::thread slow_thread([&] {
    Message learn;
    learn.Set("op", "learn");
    learn.Set("session", std::to_string(*slow_session));
    learn.Set("data", slow_problem.data_text);
    learn.Set("rank", "1");
    learn.Set("radius", "2");
    learn.Set("ell", "1");
    StatusOr<Message> response = slow_client.Call(learn);
    EXPECT_TRUE(response.ok());
  });

  // Wait until the slow learn actually occupies the slot — the inflight
  // gauge flips to 1 once the request is admitted. Without this the
  // hammer loop can race ahead of the slow thread's connect+write and
  // observe zero sheds.
  const auto admit_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server_->Snapshot().inflight < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), admit_deadline)
        << "slow learn was never admitted";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Hammer the busy server; every response must arrive, and at least one
  // must be shed while the slow learn occupies the only slot.
  int shed = 0;
  int answered = 0;
  for (int i = 0; i < 50; ++i) {
    Message query;
    query.Set("op", "query");
    query.Set("session", std::to_string(*quick_session));
    query.Set("sentence", "exists x. Red(x)");
    StatusOr<Message> response = quick_client.Call(query);
    ASSERT_TRUE(response.ok()) << response.status().message();
    const std::string status = response->Get("status");
    ASSERT_TRUE(status == kStatusOk || status == kStatusShed) << status;
    if (status == kStatusShed) {
      ++shed;
      EXPECT_EQ(ResponseExitCode(*response), 3);
    } else {
      ++answered;
      EXPECT_EQ(response->Get("result"), "true");
    }
  }
  slow_thread.join();
  EXPECT_GT(shed, 0) << "answered=" << answered;
  // Control-plane requests are admitted even under full load.
  EXPECT_TRUE(quick_client.Ping().ok());
  ServerStats stats = server_->Snapshot();
  EXPECT_EQ(stats.shed, shed);
}

TEST_F(ServerTest, DeadlineDegradesToPartialNotFailure) {
  ServerOptions options;
  options.max_deadline_ms = 0;  // every substantive request trips at once
  StartServer(std::move(options));
  TestProblem problem = MakeProblem(30, 13);
  Client client = MustConnect();
  StatusOr<uint64_t> session = client.LoadGraph(problem.graph_text);
  ASSERT_TRUE(session.ok());
  Message learn;
  learn.Set("op", "learn");
  learn.Set("session", std::to_string(*session));
  learn.Set("data", problem.data_text);
  learn.Set("rank", "1");
  learn.Set("radius", "1");
  learn.Set("ell", "1");
  StatusOr<Message> response = client.Call(learn);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->Get("status"), kStatusPartial);
  EXPECT_EQ(ResponseExitCode(*response), 3);
  EXPECT_EQ(response->Get("run-status"), "deadline-exceeded");
  // Best-so-far payload is still a loadable model.
  EXPECT_TRUE(ParseHypothesis(response->Get("model")).ok());
}

TEST_F(ServerTest, WorkBudgetPartialIsDeterministic) {
  StartServer(ServerOptions{});
  TestProblem problem = MakeProblem(30, 17);
  // Periodic labels admit no zero-error hypothesis, so the budget trips
  // mid-scan rather than early-stopping.
  TrainingSet hard;
  for (Vertex v = 0; v < 30; ++v) hard.push_back({{v}, v % 7 < 3});
  const std::string hard_text = TrainingSetToText(hard);
  Client client = MustConnect();
  StatusOr<uint64_t> session = client.LoadGraph(problem.graph_text);
  ASSERT_TRUE(session.ok());
  Message learn;
  learn.Set("op", "learn");
  learn.Set("session", std::to_string(*session));
  learn.Set("data", hard_text);
  learn.Set("rank", "1");
  learn.Set("radius", "1");
  learn.Set("ell", "1");
  learn.Set("max-work", "40");
  StatusOr<Message> first = client.Call(learn);
  StatusOr<Message> second = client.Call(learn);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->Get("status"), kStatusPartial);
  EXPECT_EQ(first->Get("run-status"), "budget-exhausted");
  EXPECT_EQ(first->Get("model"), second->Get("model"));
  EXPECT_EQ(first->Get("work-used"), second->Get("work-used"));
}

TEST_F(ServerTest, MalformedInputsGetSysexitsStyleCodes) {
  StartServer(ServerOptions{});
  Client client = MustConnect();

  Message bad_graph;
  bad_graph.Set("op", "load-graph");
  bad_graph.Set("graph", "graph zz\n");
  StatusOr<Message> response = client.Call(bad_graph);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->Get("status"), kStatusError);
  EXPECT_EQ(ResponseExitCode(*response), 65);

  Message unknown_op;
  unknown_op.Set("op", "frobnicate");
  response = client.Call(unknown_op);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(ResponseExitCode(*response), 64);

  Message unknown_session;
  unknown_session.Set("op", "learn");
  unknown_session.Set("session", "999");
  unknown_session.Set("data", "examples 1\n+ 0\n");
  response = client.Call(unknown_session);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(ResponseExitCode(*response), 64);

  // A vertex outside the session graph must be an error, not a CHECK.
  TestProblem problem = MakeProblem(10, 19);
  StatusOr<uint64_t> session = client.LoadGraph(problem.graph_text);
  ASSERT_TRUE(session.ok());
  Message out_of_range;
  out_of_range.Set("op", "learn");
  out_of_range.Set("session", std::to_string(*session));
  out_of_range.Set("data", "examples 1\n+ 5000\n");
  response = client.Call(out_of_range);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->Get("status"), kStatusError);
  EXPECT_EQ(ResponseExitCode(*response), 65);

  // Malformed numeric fields mirror the CLI's exit-64 flag audit.
  Message bad_field;
  bad_field.Set("op", "learn");
  bad_field.Set("session", std::to_string(*session));
  bad_field.Set("data", problem.data_text);
  bad_field.Set("rank", "4x");
  response = client.Call(bad_field);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(ResponseExitCode(*response), 64);

  // A query with a free variable is rejected, not CHECK-failed.
  Message open_query;
  open_query.Set("op", "query");
  open_query.Set("session", std::to_string(*session));
  open_query.Set("sentence", "Red(x)");
  response = client.Call(open_query);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(ResponseExitCode(*response), 65);
}

TEST(ProtocolTest, SocketPathValidation) {
  EXPECT_FALSE(ValidateSocketPath("").ok());
  EXPECT_TRUE(ValidateSocketPath("/tmp/ok.sock").ok());
  const std::string long_path = "/tmp/" + std::string(200, 'x') + ".sock";
  Status status = ValidateSocketPath(long_path);
  ASSERT_FALSE(status.ok());
  // The tool binaries translate this into their exit-64 flag audit.
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The client refuses the same paths before touching the socket layer.
  EXPECT_EQ(Client::Connect(long_path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, ModelHandleRoundTrip) {
  StartServer(ServerOptions{});
  TestProblem problem = MakeProblem(30, 23);
  Client client = MustConnect();
  StatusOr<uint64_t> session = client.LoadGraph(problem.graph_text);
  ASSERT_TRUE(session.ok());

  Message learn;
  learn.Set("op", "learn");
  learn.Set("session", std::to_string(*session));
  learn.Set("data", problem.data_text);
  learn.Set("rank", "1");
  learn.Set("radius", "1");
  StatusOr<Message> learned = client.Call(learn);
  ASSERT_TRUE(learned.ok());
  ASSERT_EQ(learned->Get("status"), kStatusOk) << learned->Get("error");
  const std::string model_id = learned->Get("model-id");
  ASSERT_FALSE(model_id.empty());

  // get-model returns the registered model byte-identically.
  Message get;
  get.Set("op", "get-model");
  get.Set("session", std::to_string(*session));
  get.Set("model-id", model_id);
  StatusOr<Message> fetched = client.Call(get);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched->Get("status"), kStatusOk) << fetched->Get("error");
  EXPECT_EQ(fetched->Get("model"), learned->Get("model"));

  // Repeating the identical learn reuses the handle: no second model.
  StatusOr<Message> again = client.Call(learn);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->Get("model-id"), model_id);
  Message list;
  list.Set("op", "list-models");
  list.Set("session", std::to_string(*session));
  StatusOr<Message> listed = client.Call(list);
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->Get("count"), "1");
  EXPECT_EQ(listed->Get("models"), model_id);

  // evaluate by handle == evaluate by shipped text.
  Message eval_text;
  eval_text.Set("op", "evaluate");
  eval_text.Set("session", std::to_string(*session));
  eval_text.Set("model", learned->Get("model"));
  eval_text.Set("data", problem.data_text);
  StatusOr<Message> by_text = client.Call(eval_text);
  ASSERT_TRUE(by_text.ok());
  ASSERT_EQ(by_text->Get("status"), kStatusOk) << by_text->Get("error");
  Message eval_handle;
  eval_handle.Set("op", "evaluate");
  eval_handle.Set("session", std::to_string(*session));
  eval_handle.Set("model-id", model_id);
  eval_handle.Set("data", problem.data_text);
  StatusOr<Message> by_handle = client.Call(eval_handle);
  ASSERT_TRUE(by_handle.ok());
  ASSERT_EQ(by_handle->Get("status"), kStatusOk) << by_handle->Get("error");
  EXPECT_EQ(by_handle->Get("error"), by_text->Get("error"));
  EXPECT_EQ(by_handle->Get("examples-seen"), by_text->Get("examples-seen"));

  // query by handle classifies tuples like the evaluated model.
  StatusOr<Hypothesis> hypothesis =
      ParseHypothesis(learned->Get("model"));
  ASSERT_TRUE(hypothesis.ok());
  for (Vertex v : {Vertex{0}, Vertex{1}, Vertex{2}}) {
    Message query;
    query.Set("op", "query");
    query.Set("session", std::to_string(*session));
    query.Set("model-id", model_id);
    query.Set("tuple", std::to_string(v));
    StatusOr<Message> answered = client.Call(query);
    ASSERT_TRUE(answered.ok());
    ASSERT_EQ(answered->Get("status"), kStatusOk) << answered->Get("error");
    // Training error was 0, so the model agrees with the labels.
    EXPECT_EQ(answered->Get("result"),
              problem.data[v].label ? "true" : "false");
  }

  // Handle misuse: unknown ids and ambiguous forms are usage errors.
  Message unknown;
  unknown.Set("op", "evaluate");
  unknown.Set("session", std::to_string(*session));
  unknown.Set("model-id", "999");
  unknown.Set("data", problem.data_text);
  StatusOr<Message> response = client.Call(unknown);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(ResponseExitCode(*response), 64);
  Message ambiguous;
  ambiguous.Set("op", "evaluate");
  ambiguous.Set("session", std::to_string(*session));
  ambiguous.Set("model", learned->Get("model"));
  ambiguous.Set("model-id", model_id);
  ambiguous.Set("data", problem.data_text);
  response = client.Call(ambiguous);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(ResponseExitCode(*response), 64);
}

TEST_F(ServerTest, DurableSessionsSurviveRestartByteIdentically) {
  ServerOptions options;
  options.state_dir = MakeStateDir();
  StartServer(options);
  TestProblem problem = MakeProblem(30, 29);
  std::string model_text;
  std::string model_id;
  std::string eval_error;
  uint64_t session_id = 0;
  {
    Client client = MustConnect();
    StatusOr<uint64_t> session = client.LoadGraph(problem.graph_text);
    ASSERT_TRUE(session.ok());
    session_id = *session;
    Message learn;
    learn.Set("op", "learn");
    learn.Set("session", std::to_string(session_id));
    learn.Set("data", problem.data_text);
    learn.Set("rank", "1");
    learn.Set("radius", "1");
    learn.Set("request-id", "learn-once");
    StatusOr<Message> learned = client.Call(learn);
    ASSERT_TRUE(learned.ok());
    ASSERT_EQ(learned->Get("status"), kStatusOk) << learned->Get("error");
    EXPECT_FALSE(learned->Has("deduped"));
    model_text = learned->Get("model");
    model_id = learned->Get("model-id");
    Message evaluate;
    evaluate.Set("op", "evaluate");
    evaluate.Set("session", std::to_string(session_id));
    evaluate.Set("model-id", model_id);
    evaluate.Set("data", problem.data_text);
    StatusOr<Message> evaluated = client.Call(evaluate);
    ASSERT_TRUE(evaluated.ok());
    eval_error = evaluated->Get("error");
  }

  RestartServer();
  ServerStats stats = server_->Snapshot();
  EXPECT_EQ(stats.sessions_recovered, 1);

  Client client = MustConnect();
  // The recovered session serves the model byte-identically, through the
  // handle and through get-model, after a lazy re-warm.
  Message get;
  get.Set("op", "get-model");
  get.Set("session", std::to_string(session_id));
  get.Set("model-id", model_id);
  StatusOr<Message> fetched = client.Call(get);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched->Get("status"), kStatusOk) << fetched->Get("error");
  EXPECT_EQ(fetched->Get("model"), model_text);
  Message evaluate;
  evaluate.Set("op", "evaluate");
  evaluate.Set("session", std::to_string(session_id));
  evaluate.Set("model-id", model_id);
  evaluate.Set("data", problem.data_text);
  StatusOr<Message> evaluated = client.Call(evaluate);
  ASSERT_TRUE(evaluated.ok());
  ASSERT_EQ(evaluated->Get("status"), kStatusOk) << evaluated->Get("error");
  EXPECT_EQ(evaluated->Get("error"), eval_error);
  stats = server_->Snapshot();
  EXPECT_EQ(stats.sessions_rewarmed, 1);

  // The dedup window also survived: the same request-id replays the
  // acknowledged response instead of learning again.
  Message learn;
  learn.Set("op", "learn");
  learn.Set("session", std::to_string(session_id));
  learn.Set("data", problem.data_text);
  learn.Set("rank", "1");
  learn.Set("radius", "1");
  learn.Set("request-id", "learn-once");
  StatusOr<Message> replayed = client.Call(learn);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->Get("deduped"), "1");
  EXPECT_EQ(replayed->Get("model"), model_text);
  EXPECT_EQ(replayed->Get("model-id"), model_id);
  EXPECT_EQ(server_->Snapshot().dedup_hits, 1);

  // New sessions never reuse a recovered id.
  StatusOr<uint64_t> fresh = client.LoadGraph(problem.graph_text);
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(*fresh, session_id);

  // close-session removes the journal: another restart forgets it.
  ASSERT_TRUE(client.CloseSession(session_id).ok());
  RestartServer();
  Client after = MustConnect();
  Message gone;
  gone.Set("op", "get-model");
  gone.Set("session", std::to_string(session_id));
  gone.Set("model-id", model_id);
  StatusOr<Message> missing = after.Call(gone);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(ResponseExitCode(*missing), 64);
}

TEST_F(ServerTest, FileBackedSessionSurvivesRestartAndDetectsSwaps) {
  ServerOptions options;
  options.state_dir = MakeStateDir();
  StartServer(options);
  TestProblem problem = MakeProblem(40, 30);
  problem.graph.Finalize();
  // The state dir exists once the server started; park the graph file
  // there so teardown sweeps it too.
  const std::string fog_path = options_.state_dir + "/session.fog";
  ASSERT_TRUE(WriteFogFile(fog_path, problem.graph).ok());

  Client client = MustConnect();
  Message load;
  load.Set("op", "load-graph");
  load.Set("graph-file", fog_path);
  StatusOr<Message> loaded = client.Call(load);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->Get("status"), kStatusOk) << loaded->Get("error");
  const std::string session = loaded->Get("session");
  EXPECT_EQ(loaded->Get("order"), "40");

  auto query = [&](Client& c) -> StatusOr<Message> {
    Message request;
    request.Set("op", "query");
    request.Set("session", session);
    request.Set("sentence", "exists x. Red(x)");
    return c.Call(request);
  };
  StatusOr<Message> answer = query(client);
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->Get("status"), kStatusOk) << answer->Get("error");
  EXPECT_EQ(answer->Get("result"), "true");

  // Restart: the journal references the file by path + fingerprint, and
  // the re-warm memory-maps it back in.
  RestartServer();
  Client warm = MustConnect();
  StatusOr<Message> after = query(warm);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->Get("status"), kStatusOk) << after->Get("error");
  EXPECT_EQ(after->Get("result"), "true");
  EXPECT_EQ(server_->Snapshot().sessions_rewarmed, 1);

  // Swap the file for a different graph: the next re-warm must refuse
  // with a data-loss error, not silently answer for the wrong graph.
  TestProblem other = MakeProblem(12, 31);
  other.graph.Finalize();
  ASSERT_TRUE(WriteFogFile(fog_path, other.graph).ok());
  RestartServer();
  Client swapped = MustConnect();
  StatusOr<Message> refused = query(swapped);
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(ResponseExitCode(*refused), 65);
  const std::string error = refused->Get("error");
  EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
}

TEST_F(ServerTest, DedupWindowIsBounded) {
  ServerOptions options;
  options.dedup_window = 2;
  StartServer(options);
  TestProblem problem = MakeProblem(20, 31);
  Client client = MustConnect();
  StatusOr<uint64_t> session = client.LoadGraph(problem.graph_text);
  ASSERT_TRUE(session.ok());
  auto send = [&](const std::string& rid) {
    Message learn;
    learn.Set("op", "learn");
    learn.Set("session", std::to_string(*session));
    learn.Set("data", problem.data_text);
    learn.Set("rank", "1");
    learn.Set("radius", "1");
    learn.Set("request-id", rid);
    StatusOr<Message> response = client.Call(learn);
    EXPECT_TRUE(response.ok());
    return *std::move(response);
  };
  send("a");
  send("b");
  send("c");  // evicts "a" from the window of 2
  EXPECT_EQ(send("c").Get("deduped"), "1");
  EXPECT_EQ(send("b").Get("deduped"), "1");
  EXPECT_FALSE(send("a").Has("deduped"));  // evicted: runs afresh
}

// A client that vanishes mid-request costs its connection and nothing
// else: the session stays usable and the admission slot is released
// (with max_inflight=1, a leak would shed everything afterwards).
TEST_F(ServerTest, DisconnectMidRequestDropsConnectionOnly) {
  ServerOptions options;
  options.max_inflight = 1;
  StartServer(options);
  TestProblem problem = MakeProblem(20, 37);
  Client client = MustConnect();
  StatusOr<uint64_t> session = client.LoadGraph(problem.graph_text);
  ASSERT_TRUE(session.ok());

  // Torn frame: a header promising 100 bytes, then 10, then close.
  for (int i = 0; i < 3; ++i) {
    int fd = RawConnect();
    const unsigned char torn[14] = {100, 0, 0, 0, 'p', 'a', 'r', 't', 'i',
                                    'a', 'l', 'x', 'y', 'z'};
    ASSERT_EQ(::send(fd, torn, sizeof(torn), MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof(torn)));
    ::close(fd);
  }
  // Full substantive request, then close without reading the response:
  // the server runs it and hits a dead peer on the write.
  for (int i = 0; i < 3; ++i) {
    int fd = RawConnect();
    Message learn;
    learn.Set("op", "learn");
    learn.Set("session", std::to_string(*session));
    learn.Set("data", problem.data_text);
    learn.Set("rank", "1");
    learn.Set("radius", "1");
    ASSERT_TRUE(WriteFrame(fd, learn).ok());
    ::close(fd);
  }

  // The daemon is unharmed: the session still answers, substantive
  // requests are admitted (no leaked inflight slot), and the torn frames
  // were counted as disconnects.
  bool learned_after_storm = false;
  for (int attempt = 0; attempt < 100 && !learned_after_storm; ++attempt) {
    Message learn;
    learn.Set("op", "learn");
    learn.Set("session", std::to_string(*session));
    learn.Set("data", problem.data_text);
    learn.Set("rank", "1");
    learn.Set("radius", "1");
    StatusOr<Message> response = client.Call(learn);
    ASSERT_TRUE(response.ok()) << response.status().message();
    if (response->Get("status") == kStatusShed) {
      // An abandoned learn may still hold the only slot; give it a beat.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    ASSERT_EQ(response->Get("status"), kStatusOk) << response->Get("error");
    learned_after_storm = true;
  }
  EXPECT_TRUE(learned_after_storm) << "inflight slot appears leaked";
  // The torn connections' threads race this snapshot: closing our end of
  // the socket returns before the server thread observes EOF and bumps
  // the counter, so poll until the storm has been fully accounted for.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  ServerStats stats = server_->Snapshot();
  while (stats.disconnects < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = server_->Snapshot();
  }
  EXPECT_GE(stats.disconnects, 3);
  EXPECT_EQ(stats.sessions_closed, 0);
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServerTest, IdleTtlEvictsAndJournaledSessionsRewarm) {
  ServerOptions options;
  options.state_dir = MakeStateDir();
  options.session_ttl_ms = 50;
  StartServer(options);
  TestProblem problem = MakeProblem(20, 41);
  Client client = MustConnect();
  StatusOr<uint64_t> session = client.LoadGraph(problem.graph_text);
  ASSERT_TRUE(session.ok());
  Message learn;
  learn.Set("op", "learn");
  learn.Set("session", std::to_string(*session));
  learn.Set("data", problem.data_text);
  learn.Set("rank", "1");
  learn.Set("radius", "1");
  StatusOr<Message> learned = client.Call(learn);
  ASSERT_TRUE(learned.ok());
  ASSERT_EQ(learned->Get("status"), kStatusOk);

  // Idle well past the TTL: the sweeper demotes the session to cold.
  for (int i = 0; i < 100 && server_->Snapshot().sessions_evicted == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(server_->Snapshot().sessions_evicted, 1);

  // The evicted session transparently re-warms on next use, with the
  // model handle intact.
  Message evaluate;
  evaluate.Set("op", "evaluate");
  evaluate.Set("session", std::to_string(*session));
  evaluate.Set("model-id", learned->Get("model-id"));
  evaluate.Set("data", problem.data_text);
  StatusOr<Message> evaluated = client.Call(evaluate);
  ASSERT_TRUE(evaluated.ok());
  ASSERT_EQ(evaluated->Get("status"), kStatusOk) << evaluated->Get("error");
  EXPECT_GE(server_->Snapshot().sessions_rewarmed, 1);
}

TEST_F(ServerTest, IdleTtlClosesMemoryOnlySessions) {
  ServerOptions options;
  options.session_ttl_ms = 50;  // no state dir: eviction is closure
  StartServer(options);
  TestProblem problem = MakeProblem(15, 43);
  Client client = MustConnect();
  StatusOr<uint64_t> session = client.LoadGraph(problem.graph_text);
  ASSERT_TRUE(session.ok());
  for (int i = 0; i < 100 && server_->Snapshot().sessions_evicted == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(server_->Snapshot().sessions_evicted, 1);
  Message query;
  query.Set("op", "query");
  query.Set("session", std::to_string(*session));
  query.Set("sentence", "exists x. Red(x)");
  StatusOr<Message> response = client.Call(query);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(ResponseExitCode(*response), 64);  // unknown session now
}

TEST_F(ServerTest, HeartbeatKeepsIdleSessionAlive) {
  ServerOptions options;
  // Generous TTL: under parallel ctest load a 100ms sleep can stretch far
  // past its nominal duration, and the session must still look fresh.
  options.session_ttl_ms = 5000;
  StartServer(options);
  TestProblem problem = MakeProblem(15, 47);
  Client client = MustConnect();
  StatusOr<uint64_t> session = client.LoadGraph(problem.graph_text);
  ASSERT_TRUE(session.ok());
  // Heartbeats at a fraction of the TTL hold the session in memory.
  for (int i = 0; i < 6; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    Message ping;
    ping.Set("op", "ping");
    ping.Set("session", std::to_string(*session));
    StatusOr<Message> response = client.Call(ping);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->Get("session-known"), "1");
  }
  EXPECT_EQ(server_->Snapshot().sessions_evicted, 0);
  Message ping;
  ping.Set("op", "ping");
  ping.Set("session", "12345");
  StatusOr<Message> response = client.Call(ping);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->Get("session-known"), "0");
}

TEST_F(ServerTest, RetryingClientRidesThroughShed) {
  ServerOptions options;
  options.max_inflight = 1;
  StartServer(options);
  TestProblem slow_problem = MakeProblem(120, 53);
  for (Vertex v = 0; v < 120; ++v) {
    slow_problem.data[v].label = v % 7 < 3;
  }
  slow_problem.data_text = TrainingSetToText(slow_problem.data);
  Client slow_client = MustConnect();
  StatusOr<uint64_t> slow_session =
      slow_client.LoadGraph(slow_problem.graph_text);
  ASSERT_TRUE(slow_session.ok());

  TestProblem quick_problem = MakeProblem(10, 54);
  Client setup = MustConnect();
  StatusOr<uint64_t> quick_session =
      setup.LoadGraph(quick_problem.graph_text);
  ASSERT_TRUE(quick_session.ok());

  std::thread slow_thread([&] {
    Message learn;
    learn.Set("op", "learn");
    learn.Set("session", std::to_string(*slow_session));
    learn.Set("data", slow_problem.data_text);
    learn.Set("rank", "1");
    learn.Set("radius", "2");
    learn.Set("ell", "1");
    EXPECT_TRUE(slow_client.Call(learn).ok());
  });

  RetryPolicy policy;
  policy.max_retries = 200;
  policy.backoff_ms = 2;
  policy.max_backoff_ms = 20;
  RetryingClient retrying(server_->socket_path(), policy);
  // Substantive requests keep succeeding against the saturated server —
  // sheds are absorbed by the retry loop, never surfaced.
  for (int i = 0; i < 10; ++i) {
    Message query;
    query.Set("op", "query");
    query.Set("session", std::to_string(*quick_session));
    query.Set("sentence", "exists x. Red(x)");
    StatusOr<Message> response = retrying.Call(query);
    ASSERT_TRUE(response.ok()) << response.status().message();
    ASSERT_EQ(response->Get("status"), kStatusOk) << response->Get("error");
    EXPECT_EQ(response->Get("result"), "true");
  }
  slow_thread.join();

  // Terminal responses surface immediately: no retry budget is burned on
  // a request that is itself at fault.
  Message bad;
  bad.Set("op", "query");
  bad.Set("session", std::to_string(*quick_session));
  bad.Set("sentence", "Red(x)");  // free variable: data error
  StatusOr<Message> response = retrying.Call(bad);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(ResponseExitCode(*response), 65);
  EXPECT_EQ(retrying.last_attempts(), 1);
}

TEST_F(ServerTest, RetryingClientReconnectsAcrossRestart) {
  ServerOptions options;
  options.state_dir = MakeStateDir();
  StartServer(options);
  TestProblem problem = MakeProblem(20, 59);
  Client setup = MustConnect();
  StatusOr<uint64_t> session = setup.LoadGraph(problem.graph_text);
  ASSERT_TRUE(session.ok());

  RetryPolicy policy;
  policy.max_retries = 100;
  policy.backoff_ms = 5;
  policy.max_backoff_ms = 50;
  RetryingClient retrying(server_->socket_path(), policy);
  Message learn;
  learn.Set("op", "learn");
  learn.Set("session", std::to_string(*session));
  learn.Set("data", problem.data_text);
  learn.Set("rank", "1");
  learn.Set("radius", "1");
  learn.Set("request-id", "across-restart");
  StatusOr<Message> first = retrying.Call(learn);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->Get("status"), kStatusOk) << first->Get("error");

  // Kill the daemon; re-issue the same request while a restart lands.
  server_->Shutdown();
  serve_thread_.join();
  std::thread restarter([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    server_ = std::make_unique<Server>(ServerOptions(options_));
    ASSERT_TRUE(server_->Start().ok());
    serve_thread_ = std::thread([this] { server_->Serve(); });
  });
  StatusOr<Message> second = retrying.Call(learn);
  restarter.join();
  ASSERT_TRUE(second.ok()) << second.status().message();
  ASSERT_EQ(second->Get("status"), kStatusOk) << second->Get("error");
  EXPECT_GT(retrying.last_attempts(), 1);
  // The journaled dedup window made the cross-restart retry idempotent.
  EXPECT_EQ(second->Get("deduped"), "1");
  EXPECT_EQ(second->Get("model"), first->Get("model"));
  EXPECT_EQ(second->Get("model-id"), first->Get("model-id"));
}

// ---------------------------------------------------------------------
// Memory governance: pressure-tier gating, per-session budgets, journal
// compaction, and the stats surface. Tiers are pinned with force_tier so
// every behaviour here is deterministic.

TEST_F(ServerTest, BlackTierShedsSubstantiveButServesHeartbeats) {
  ServerOptions options;
  options.force_tier = static_cast<int>(PressureTier::kBlack);
  StartServer(std::move(options));
  Client client = MustConnect();
  // The ops that observe or relieve the pressure stay admitted.
  ASSERT_TRUE(client.Ping().ok());
  Message stats;
  stats.Set("op", "stats");
  StatusOr<Message> observed = client.Call(stats);
  ASSERT_TRUE(observed.ok());
  EXPECT_EQ(observed->Get("status"), kStatusOk);
  EXPECT_EQ(observed->Get("mem-tier"), "black");
  // Every substantive request is shed retry-safe with the temp-fail code.
  TestProblem problem = MakeProblem(10, 41);
  Message load;
  load.Set("op", "load-graph");
  load.Set("graph", problem.graph_text);
  StatusOr<Message> shed = client.Call(load);
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->Get("status"), kStatusShed);
  EXPECT_EQ(shed->Get("code"), "75");
  EXPECT_EQ(shed->Get("tier"), "black");
  EXPECT_TRUE(IsRetryableResponse(*shed));
  EXPECT_EQ(ResponseExitCode(*shed), 3);
  EXPECT_GE(server_->Snapshot().mem_shed, 1);
  // Shedding is stateless: the daemon still answers after it.
  ASSERT_TRUE(client.Ping().ok());
}

TEST_F(ServerTest, YellowTierShedsHeapGraphsButAdmitsMmapPacks) {
  ServerOptions options;
  options.state_dir = MakeStateDir();
  options.force_tier = static_cast<int>(PressureTier::kYellow);
  StartServer(std::move(options));
  TestProblem problem = MakeProblem(24, 42);
  problem.graph.Finalize();
  const std::string fog_path = options_.state_dir + "/pressure.fog";
  ASSERT_TRUE(WriteFogFile(fog_path, problem.graph).ok());

  Client client = MustConnect();
  // Inline text would become a heap-resident parse: shed retry-safe.
  Message inline_load;
  inline_load.Set("op", "load-graph");
  inline_load.Set("graph", problem.graph_text);
  StatusOr<Message> shed = client.Call(inline_load);
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->Get("status"), kStatusShed);
  EXPECT_EQ(shed->Get("tier"), "yellow");
  // The .fog pack is memory-mapped — reclaimable pages — so it loads.
  Message pack_load;
  pack_load.Set("op", "load-graph");
  pack_load.Set("graph-file", fog_path);
  StatusOr<Message> loaded = client.Call(pack_load);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->Get("status"), kStatusOk) << loaded->Get("error");
  const std::string session = loaded->Get("session");
  // And the admitted session serves substantive work under yellow.
  Message query;
  query.Set("op", "query");
  query.Set("session", session);
  query.Set("sentence", "exists x. Red(x)");
  StatusOr<Message> answer = client.Call(query);
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->Get("status"), kStatusOk) << answer->Get("error");
  EXPECT_EQ(answer->Get("result"), "true");
}

TEST_F(ServerTest, RedTierEvictsIdleWarmStateAndRewarmsOnUse) {
  ServerOptions options;
  options.state_dir = MakeStateDir();
  options.force_tier = static_cast<int>(PressureTier::kRed);
  options.mem_watchdog_ms = 10;
  StartServer(std::move(options));
  TestProblem problem = MakeProblem(24, 43);
  problem.graph.Finalize();
  const std::string fog_path = options_.state_dir + "/red.fog";
  ASSERT_TRUE(WriteFogFile(fog_path, problem.graph).ok());

  Client client = MustConnect();
  Message load;
  load.Set("op", "load-graph");
  load.Set("graph-file", fog_path);
  StatusOr<Message> loaded = client.Call(load);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->Get("status"), kStatusOk) << loaded->Get("error");
  const std::string session = loaded->Get("session");

  auto query = [&]() -> StatusOr<Message> {
    Message request;
    request.Set("op", "query");
    request.Set("session", session);
    request.Set("sentence", "exists x. Red(x)");
    return client.Call(request);
  };
  StatusOr<Message> warm = query();
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->Get("status"), kStatusOk) << warm->Get("error");

  // The watchdog sweeps the now-idle journaled session back to cold.
  ServerStats snapshot;
  for (int i = 0; i < 200; ++i) {
    snapshot = server_->Snapshot();
    if (snapshot.warm_evictions >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(snapshot.warm_evictions, 1) << "red tier never demoted the "
                                           "idle journaled session";

  // Demotion, not loss: the next request lazily re-warms and answers
  // identically.
  StatusOr<Message> rewarmed = query();
  ASSERT_TRUE(rewarmed.ok());
  ASSERT_EQ(rewarmed->Get("status"), kStatusOk) << rewarmed->Get("error");
  EXPECT_EQ(rewarmed->Get("result"), warm->Get("result"));
}

TEST_F(ServerTest, SessionMemBudgetCutsLearnToGovernedPartial) {
  ServerOptions options;
  // A cap no session stays under: the graph text's forced charge alone
  // overshoots it, so the learn's governor cuts at its first probe.
  options.session_mem_bytes = 64;
  StartServer(std::move(options));
  TestProblem problem = MakeProblem(30, 44);
  Client client = MustConnect();
  StatusOr<uint64_t> session = client.LoadGraph(problem.graph_text);
  ASSERT_TRUE(session.ok()) << session.status().message();
  Message learn;
  learn.Set("op", "learn");
  learn.Set("session", std::to_string(*session));
  learn.Set("data", problem.data_text);
  learn.Set("rank", "1");
  learn.Set("radius", "1");
  StatusOr<Message> cut = client.Call(learn);
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(cut->Get("status"), kStatusPartial) << cut->Get("error");
  EXPECT_EQ(cut->Get("run-status"), "resource-exhausted");
  EXPECT_EQ(ResponseExitCode(*cut), 3);
  // Governed, not broken: the session keeps serving.
  ASSERT_TRUE(client.Ping().ok());
}

TEST_F(ServerTest, JournalCompactionDropsOldestModelsAndSurvivesRestart) {
  ServerOptions options;
  options.state_dir = MakeStateDir();
  options.max_session_models = 2;
  StartServer(options);
  TestProblem problem = MakeProblem(24, 45);
  Client client = MustConnect();
  StatusOr<uint64_t> session = client.LoadGraph(problem.graph_text);
  ASSERT_TRUE(session.ok());

  // Identical model text reuses its handle, so distinct labelings are
  // needed to actually grow the model table past the cap.
  auto relabel = [&](int mode) {
    TrainingSet data = problem.data;
    for (size_t i = 0; i < data.size(); ++i) {
      data[i].label = mode == 0   ? data[i].label
                      : mode == 1 ? true
                                  : false;
    }
    return TrainingSetToText(data);
  };
  auto learn = [&](const std::string& request_id,
                   const std::string& data_text) -> std::string {
    Message request;
    request.Set("op", "learn");
    request.Set("session", std::to_string(*session));
    request.Set("data", data_text);
    request.Set("rank", "1");
    request.Set("radius", "1");
    request.Set("request-id", request_id);
    StatusOr<Message> learned = client.Call(request);
    EXPECT_TRUE(learned.ok());
    EXPECT_EQ(learned->Get("status"), kStatusOk) << learned->Get("error");
    return learned->Get("model-id");
  };
  const std::string first = learn("compact-1", relabel(0));
  const std::string second = learn("compact-2", relabel(1));
  const std::string third = learn("compact-3", relabel(2));
  ASSERT_NE(first, second);
  ASSERT_NE(second, third);
  ASSERT_NE(first, third);

  auto get_model = [&](Client& c, const std::string& id) -> StatusOr<Message> {
    Message request;
    request.Set("op", "get-model");
    request.Set("session", std::to_string(*session));
    request.Set("model-id", id);
    return c.Call(request);
  };
  // The cap is 2: the third learn compacted the oldest handle away.
  StatusOr<Message> dropped = get_model(client, first);
  ASSERT_TRUE(dropped.ok());
  EXPECT_NE(dropped->Get("status"), kStatusOk);
  StatusOr<Message> kept = get_model(client, third);
  ASSERT_TRUE(kept.ok());
  ASSERT_EQ(kept->Get("status"), kStatusOk) << kept->Get("error");
  const std::string third_text = kept->Get("model");
  ServerStats stats = server_->Snapshot();
  EXPECT_GE(stats.models_compacted, 1);
  EXPECT_GE(stats.journal_compactions, 1);

  // The compacted journal is what restarts recover: the dropped handle
  // stays dropped, the survivors stay byte-identical.
  RestartServer();
  Client recovered = MustConnect();
  StatusOr<Message> still_dropped = get_model(recovered, first);
  ASSERT_TRUE(still_dropped.ok());
  EXPECT_NE(still_dropped->Get("status"), kStatusOk);
  StatusOr<Message> still_kept = get_model(recovered, third);
  ASSERT_TRUE(still_kept.ok());
  ASSERT_EQ(still_kept->Get("status"), kStatusOk)
      << still_kept->Get("error");
  EXPECT_EQ(still_kept->Get("model"), third_text);
  (void)second;
}

TEST_F(ServerTest, StatsExposeMemoryGovernanceGauges) {
  ServerOptions options;
  options.mem_budget_bytes = int64_t{4} << 30;  // roomy: stays green
  options.mem_watchdog_ms = 10;
  StartServer(std::move(options));
  TestProblem problem = MakeProblem(20, 46);
  Client client = MustConnect();
  StatusOr<uint64_t> session = client.LoadGraph(problem.graph_text);
  ASSERT_TRUE(session.ok());
  Message stats;
  stats.Set("op", "stats");
  StatusOr<Message> observed = client.Call(stats);
  ASSERT_TRUE(observed.ok());
  ASSERT_EQ(observed->Get("status"), kStatusOk);
  EXPECT_EQ(observed->Get("mem-tier"), "green");
  EXPECT_EQ(observed->Get("mem-budget-bytes"),
            std::to_string(int64_t{4} << 30));
  // The loaded graph's forced charge is visible in the accounted gauge.
  EXPECT_GT(std::stoll(observed->Get("mem-used-bytes")), 0);
  EXPECT_GT(std::stoll(observed->Get("mem-peak-bytes")), 0);
  EXPECT_GT(std::stoll(observed->Get("rss-bytes")), 0);
  EXPECT_EQ(observed->Get("mem-shed"), "0");
}

TEST_F(ServerTest, ShutdownOpStopsTheServeLoop) {
  StartServer(ServerOptions{});
  Client client = MustConnect();
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.RequestShutdown().ok());
  serve_thread_.join();
  // The socket file is gone; new connections fail cleanly.
  StatusOr<Client> late = Client::Connect(server_->socket_path());
  EXPECT_FALSE(late.ok());
}

}  // namespace
}  // namespace folearn
