#include <gtest/gtest.h>

#include "graph/generators.h"
#include "learn/vc.h"
#include "util/rng.h"

namespace folearn {
namespace {

TEST(VcDimension, SingleTypeClassShattersOnePoint) {
  // On an uncoloured clique, all vertices share one local type: the class
  // {∅, everything} shatters exactly one point.
  Graph g = MakeComplete(5);
  VcOptions options;
  options.rank = 1;
  options.radius = 1;
  VcResult result = ComputeVcDimension(g, 1, options);
  EXPECT_EQ(result.vc_dimension, 1);
  EXPECT_EQ(result.distinct_partitions, 1);
}

TEST(VcDimension, StarShattersHubPlusLeaf) {
  // Star at rank 2: two type classes (hub, leaf — rank 1 cannot tell them
  // apart, see types_test) → arbitrary unions shatter {hub, leaf} but no 3
  // points.
  Graph g = MakeStar(6);
  VcOptions options;
  options.rank = 2;
  options.radius = 1;
  VcResult result = ComputeVcDimension(g, 1, options);
  EXPECT_EQ(result.vc_dimension, 2);
  EXPECT_EQ(result.shattered_sample.size(), 2u);
}

TEST(VcDimension, GrowsWithColorDiversity) {
  Rng rng(80);
  Graph plain = MakePath(8);
  Graph colored = MakePath(8);
  AddPeriodicColor(colored, "A", 2, 0);
  AddPeriodicColor(colored, "B", 3, 0);
  VcOptions options;
  options.rank = 1;
  options.radius = 1;
  int vc_plain = ComputeVcDimension(plain, 1, options).vc_dimension;
  int vc_colored = ComputeVcDimension(colored, 1, options).vc_dimension;
  EXPECT_GE(vc_colored, vc_plain);
  EXPECT_GT(vc_colored, 2);
}

TEST(VcDimension, ParameterDimensionIncreasesVc) {
  // With ℓ = 1 the class can localise around any vertex, adding partitions
  // and shattering power.
  Graph g = MakePath(7);
  VcOptions no_params;
  no_params.rank = 1;
  no_params.radius = 1;
  VcOptions one_param = no_params;
  one_param.ell = 1;
  int vc0 = ComputeVcDimension(g, 1, no_params).vc_dimension;
  int vc1 = ComputeVcDimension(g, 1, one_param).vc_dimension;
  EXPECT_GE(vc1, vc0);
  EXPECT_GT(ComputeVcDimension(g, 1, one_param).distinct_partitions, 1);
}

TEST(VcDimension, WitnessSampleIsActuallyShatterable) {
  // Sanity on the witness: its size matches the reported dimension and all
  // entries are valid k-tuples.
  Rng rng(81);
  Graph g = MakeRandomTree(8, rng);
  AddRandomColors(g, {"Red"}, 0.5, rng);
  VcOptions options;
  options.rank = 1;
  options.radius = 2;
  VcResult result = ComputeVcDimension(g, 1, options);
  EXPECT_EQ(result.shattered_sample.size(),
            static_cast<size_t>(result.vc_dimension));
  for (const auto& tuple : result.shattered_sample) {
    ASSERT_EQ(tuple.size(), 1u);
    EXPECT_TRUE(g.IsValidVertex(tuple[0]));
  }
}

TEST(VcDimension, BoundedOnGrowingTrees) {
  // The Adler–Adler shape: fixed (k, ℓ, q, r) ⇒ VC stays bounded as tree
  // size grows (here: constant across a 3× size increase).
  Rng rng(82);
  VcOptions options;
  options.rank = 1;
  options.radius = 1;
  int vc_small = ComputeVcDimension(MakeRandomTree(8, rng), 1,
                                    options).vc_dimension;
  int vc_large = ComputeVcDimension(MakeRandomTree(24, rng), 1,
                                    options).vc_dimension;
  EXPECT_LE(vc_large, vc_small + 2);
  EXPECT_LE(vc_large, 6);
}

TEST(VcDimension, PairTuples) {
  Graph g = MakePath(4);
  VcOptions options;
  options.rank = 1;
  options.radius = 1;
  options.max_dimension = 6;
  VcResult result = ComputeVcDimension(g, 2, options);
  EXPECT_GE(result.vc_dimension, 2);  // pair types: equal/adjacent/far…
  for (const auto& tuple : result.shattered_sample) {
    EXPECT_EQ(tuple.size(), 2u);
  }
}

TEST(VcDimension, MaxDimensionCapRespected) {
  Graph g = MakePath(10);
  AddPeriodicColor(g, "A", 2, 0);
  AddPeriodicColor(g, "B", 3, 0);
  VcOptions options;
  options.rank = 1;
  options.radius = 2;
  options.max_dimension = 2;
  VcResult result = ComputeVcDimension(g, 1, options);
  EXPECT_LE(result.vc_dimension, 2);
}

}  // namespace
}  // namespace folearn
