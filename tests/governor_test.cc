// ResourceGovernor unit tests plus anytime-semantics tests for every
// governed entry point: interrupted runs return a valid best-so-far
// result, and work-budget / injected trips are deterministic (same inputs
// + same budget ⇒ byte-identical serialised model).

#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "fo/mso.h"
#include "fo/parser.h"
#include "graph/generators.h"
#include "learn/erm.h"
#include "learn/hardness.h"
#include "learn/model_io.h"
#include "learn/nd_learner.h"
#include "learn/sublinear.h"
#include "learn/vc.h"
#include "mc/bottom_up.h"
#include "mc/evaluator.h"
#include "util/governor.h"
#include "util/rng.h"

namespace folearn {
namespace {

// Labels all k-tuples of `graph` by `query` (over x1..xk).
TrainingSet LabelAll(const Graph& graph, const std::string& query, int k) {
  FormulaRef f = MustParseFormula(query);
  std::vector<std::string> vars = QueryVars(k);
  return LabelByQuery(graph, f, vars, AllTuples(graph.order(), k));
}

std::string ModelText(const ErmResult& result) {
  return HypothesisToText(result.hypothesis.ToExplicit());
}

// --- ResourceGovernor unit tests ---------------------------------------

TEST(Governor, UnlimitedPassesAndCountsWork) {
  ResourceGovernor governor;
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(governor.Checkpoint());
  EXPECT_EQ(governor.status(), RunStatus::kComplete);
  EXPECT_FALSE(governor.Interrupted());
  EXPECT_EQ(governor.work_used(), 1000);
  EXPECT_EQ(governor.checkpoints_passed(), 1000);
}

TEST(Governor, WorkBudgetTripsDeterministicallyAndLatches) {
  GovernorLimits limits;
  limits.max_work = 10;
  ResourceGovernor governor(limits);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(governor.Checkpoint()) << i;
  EXPECT_FALSE(governor.Checkpoint());
  EXPECT_EQ(governor.status(), RunStatus::kBudgetExhausted);
  EXPECT_TRUE(governor.Interrupted());
  // Latched: every later checkpoint fails without charging more work.
  int64_t work_at_trip = governor.work_used();
  EXPECT_FALSE(governor.Checkpoint());
  EXPECT_FALSE(governor.Checkpoint(100));
  EXPECT_EQ(governor.work_used(), work_at_trip);
}

TEST(Governor, UnitsChargeMultipleWork) {
  GovernorLimits limits;
  limits.max_work = 10;
  ResourceGovernor governor(limits);
  EXPECT_TRUE(governor.Checkpoint(6));
  EXPECT_EQ(governor.work_used(), 6);
  EXPECT_FALSE(governor.Checkpoint(6));  // 12 > 10
  EXPECT_EQ(governor.status(), RunStatus::kBudgetExhausted);
}

TEST(Governor, ZeroDeadlineTripsAtFirstCheckpoint) {
  GovernorLimits limits;
  limits.deadline_ms = 0;
  ResourceGovernor governor(limits);
  EXPECT_FALSE(governor.Checkpoint());
  EXPECT_EQ(governor.status(), RunStatus::kDeadlineExceeded);
}

TEST(Governor, CancellationFlagTripsNextCheckpoint) {
  std::atomic<bool> cancel{false};
  ResourceGovernor governor(GovernorLimits{}, &cancel);
  EXPECT_TRUE(governor.Checkpoint());
  cancel.store(true);
  EXPECT_FALSE(governor.Checkpoint());
  EXPECT_EQ(governor.status(), RunStatus::kCancelled);
}

TEST(Governor, FaultInjectorTripsAtExactCheckpoint) {
  FaultInjector injector(5, RunStatus::kDeadlineExceeded);
  ResourceGovernor governor(GovernorLimits{}, nullptr, &injector);
  for (int i = 1; i <= 4; ++i) EXPECT_TRUE(governor.Checkpoint()) << i;
  EXPECT_FALSE(governor.Checkpoint());
  EXPECT_EQ(governor.status(), RunStatus::kDeadlineExceeded);
  EXPECT_EQ(governor.checkpoints_passed(), 5);
}

TEST(Governor, NullHelpersAreUngoverned) {
  EXPECT_TRUE(GovernorCheckpoint(nullptr));
  EXPECT_TRUE(GovernorCheckpoint(nullptr, 100));
  EXPECT_EQ(GovernorStatus(nullptr), RunStatus::kComplete);
  EXPECT_FALSE(GovernorInterrupted(nullptr));
}

TEST(Governor, StatusNames) {
  EXPECT_STREQ(RunStatusName(RunStatus::kComplete), "complete");
  EXPECT_STREQ(RunStatusName(RunStatus::kDeadlineExceeded),
               "deadline-exceeded");
  EXPECT_STREQ(RunStatusName(RunStatus::kBudgetExhausted),
               "budget-exhausted");
  EXPECT_STREQ(RunStatusName(RunStatus::kCancelled), "cancelled");
  EXPECT_FALSE(IsInterrupted(RunStatus::kComplete));
  EXPECT_TRUE(IsInterrupted(RunStatus::kBudgetExhausted));
}

// --- Governed ERM ------------------------------------------------------

TEST(GovernedErm, GenerousBudgetMatchesUngoverned) {
  Graph g = MakePath(8);
  AddPeriodicColor(g, "Red", 3, 0);
  TrainingSet examples = LabelAll(g, "exists z. (E(x1, z) & Red(z))", 1);
  ErmResult ungoverned = BruteForceErm(g, examples, 1, {1, -1});
  GovernorLimits limits;
  limits.max_work = 1000000000;
  ResourceGovernor governor(limits);
  ErmOptions options;
  options.governor = &governor;
  ErmResult governed = BruteForceErm(g, examples, 1, options);
  EXPECT_EQ(governed.status, RunStatus::kComplete);
  EXPECT_EQ(governed.training_error, ungoverned.training_error);
  EXPECT_EQ(ModelText(governed), ModelText(ungoverned));
}

TEST(GovernedErm, TypeMajorityPartialVoteOverSeenExamples) {
  Graph g = MakePath(6);
  TrainingSet examples = {{{0}, true}, {{1}, true}, {{2}, true}, {{3}, true}};
  FaultInjector injector(3);  // two examples processed, third trips
  ResourceGovernor governor(GovernorLimits{}, nullptr, &injector);
  ErmOptions options;
  options.governor = &governor;
  ErmResult result = TypeMajorityErm(g, examples, {}, options);
  EXPECT_EQ(result.status, RunStatus::kBudgetExhausted);
  EXPECT_GE(result.training_error, 0.0);
  EXPECT_LE(result.training_error, 1.0);
  ASSERT_NE(result.hypothesis.registry, nullptr);
}

TEST(GovernedErm, TripBeforeAnyExampleIsPessimistic) {
  Graph g = MakePath(4);
  TrainingSet examples = {{{0}, true}, {{1}, false}};
  FaultInjector injector(1);
  ResourceGovernor governor(GovernorLimits{}, nullptr, &injector);
  ErmOptions options;
  options.governor = &governor;
  ErmResult result = TypeMajorityErm(g, examples, {}, options);
  EXPECT_TRUE(IsInterrupted(result.status));
  EXPECT_EQ(result.training_error, 1.0);
}

TEST(GovernedErm, EveryInjectedTripYieldsSerialisableHypothesis) {
  Rng rng(7);
  Graph g = MakeRandomTree(12, rng);
  AddRandomColors(g, {"Red"}, 0.5, rng);
  TrainingSet examples =
      LabelAll(g, "Red(x1) | exists z. (E(x1, z) & Red(z))", 1);
  int interrupted_runs = 0;
  for (int trip = 1; trip <= 40; trip += 3) {
    FaultInjector injector(trip);
    ResourceGovernor governor(GovernorLimits{}, nullptr, &injector);
    ErmOptions options;
    options.governor = &governor;
    ErmResult result = BruteForceErm(g, examples, 1, options);
    // A late enough trip point lets the scan finish first — that run is
    // simply complete. Early trips must still yield a usable model.
    if (IsInterrupted(result.status)) ++interrupted_runs;
    ASSERT_NE(result.hypothesis.registry, nullptr) << "trip=" << trip;
    EXPECT_GE(result.training_error, 0.0);
    EXPECT_LE(result.training_error, 1.0);
    // The degraded model must survive the save/load round trip.
    std::string text = ModelText(result);
    EXPECT_TRUE(HypothesisFromText(text).has_value()) << text;
  }
  EXPECT_GT(interrupted_runs, 0);
}

TEST(GovernedErm, InjectedTripIsDeterministic) {
  Rng rng(7);
  Graph g = MakeRandomTree(12, rng);
  AddRandomColors(g, {"Red"}, 0.5, rng);
  TrainingSet examples =
      LabelAll(g, "Red(x1) | exists z. (E(x1, z) & Red(z))", 1);
  for (int trip = 1; trip <= 40; trip += 7) {
    auto run = [&](int at) {
      FaultInjector injector(at);
      ResourceGovernor governor(GovernorLimits{}, nullptr, &injector);
      ErmOptions options;
      options.governor = &governor;
      return BruteForceErm(g, examples, 1, options);
    };
    ErmResult a = run(trip);
    ErmResult b = run(trip);
    EXPECT_EQ(a.status, b.status) << "trip=" << trip;
    EXPECT_EQ(a.training_error, b.training_error) << "trip=" << trip;
    EXPECT_EQ(a.parameter_tuples_tried, b.parameter_tuples_tried);
    EXPECT_EQ(ModelText(a), ModelText(b)) << "trip=" << trip;
  }
}

TEST(GovernedErm, WorkBudgetTripIsDeterministic) {
  Graph g = MakeCycle(9);
  AddPeriodicColor(g, "Red", 2, 0);
  TrainingSet examples = LabelAll(g, "Red(x1)", 1);
  for (int64_t budget : {1, 5, 20, 50, 200}) {
    auto run = [&]() {
      GovernorLimits limits;
      limits.max_work = budget;
      ResourceGovernor governor(limits);
      ErmOptions options;
      options.governor = &governor;
      return BruteForceErm(g, examples, 1, options);
    };
    ErmResult a = run();
    ErmResult b = run();
    EXPECT_EQ(a.status, b.status) << "budget=" << budget;
    EXPECT_EQ(a.training_error, b.training_error) << "budget=" << budget;
    EXPECT_EQ(ModelText(a), ModelText(b)) << "budget=" << budget;
  }
}

TEST(GovernedErm, EnumerationErmReportsInterruption) {
  Graph g = MakePath(4);
  TrainingSet examples = LabelAll(g, "exists z. E(x1, z)", 1);
  EnumerationOptions enumeration;
  enumeration.max_quantifier_rank = 1;
  FaultInjector injector(1);  // before the very first formula
  ResourceGovernor governor(GovernorLimits{}, nullptr, &injector);
  EnumerationErmResult result =
      EnumerationErm(g, examples, 0, enumeration, &governor);
  EXPECT_TRUE(IsInterrupted(result.status));
  EXPECT_EQ(result.formulas_tried, 0);
}

// --- Governed nd-learner ----------------------------------------------

TEST(GovernedNdLearner, GenerousBudgetMatchesUngoverned) {
  Rng rng(3);
  Graph g = MakeRandomTree(14, rng);
  AddRandomColors(g, {"Red"}, 0.4, rng);
  TrainingSet examples = LabelAll(g, "exists z. (E(x1, z) & Red(z))", 1);
  NdLearnerOptions base;
  base.rank = 1;
  base.ell_star = 1;
  NdLearnerResult ungoverned = LearnNowhereDense(g, examples, base);
  EXPECT_EQ(ungoverned.status, RunStatus::kComplete);
  GovernorLimits limits;
  limits.max_work = 1000000000;
  ResourceGovernor governor(limits);
  NdLearnerOptions governed_options = base;
  governed_options.governor = &governor;
  NdLearnerResult governed = LearnNowhereDense(g, examples, governed_options);
  EXPECT_EQ(governed.status, RunStatus::kComplete);
  EXPECT_EQ(governed.erm.training_error, ungoverned.erm.training_error);
  EXPECT_EQ(ModelText(governed.erm), ModelText(ungoverned.erm));
}

TEST(GovernedNdLearner, InjectedTripReturnsBestSoFarDeterministically) {
  Rng rng(3);
  Graph g = MakeRandomTree(14, rng);
  AddRandomColors(g, {"Red"}, 0.4, rng);
  TrainingSet examples = LabelAll(g, "exists z. (E(x1, z) & Red(z))", 1);
  NdLearnerOptions base;
  base.rank = 1;
  base.ell_star = 1;
  for (int trip : {1, 2, 5, 10, 25, 60, 150}) {
    auto run = [&](int at) {
      FaultInjector injector(at);
      ResourceGovernor governor(GovernorLimits{}, nullptr, &injector);
      NdLearnerOptions options = base;
      options.governor = &governor;
      return LearnNowhereDense(g, examples, options);
    };
    NdLearnerResult a = run(trip);
    NdLearnerResult b = run(trip);
    EXPECT_EQ(a.status, b.status) << "trip=" << trip;
    // A trip point past the run's total checkpoint count never fires, so
    // that run is simply complete; determinism must hold either way.
    if (trip <= 25) {
      EXPECT_TRUE(IsInterrupted(a.status)) << "trip=" << trip;
    }
    // Even under the earliest possible trip, the result carries a
    // well-formed, serialisable hypothesis (the empty-prefix candidate).
    ASSERT_NE(a.erm.hypothesis.registry, nullptr) << "trip=" << trip;
    EXPECT_EQ(a.erm.training_error, b.erm.training_error) << "trip=" << trip;
    EXPECT_EQ(a.candidates_evaluated, b.candidates_evaluated);
    EXPECT_EQ(ModelText(a.erm), ModelText(b.erm)) << "trip=" << trip;
  }
}

// --- Governed sublinear learning ---------------------------------------

TEST(GovernedSublinear, ErmTripKeepsBestSoFar) {
  Graph g = MakePath(10);
  AddPeriodicColor(g, "Red", 2, 0);
  TrainingSet examples = LabelAll(g, "Red(x1)", 1);
  FaultInjector injector(5);
  ResourceGovernor governor(GovernorLimits{}, nullptr, &injector);
  ErmOptions options;
  options.governor = &governor;
  SublinearErmResult result = SublinearErm(g, examples, 1, options);
  EXPECT_TRUE(IsInterrupted(result.erm.status));
  ASSERT_NE(result.erm.hypothesis.registry, nullptr);
  EXPECT_GE(result.erm.training_error, 0.0);
  EXPECT_LE(result.erm.training_error, 1.0);
}

TEST(GovernedSublinear, IndexBuildReportsStatusAndIndexedPrefix) {
  Graph g = MakePath(12);
  FaultInjector injector(4);
  ResourceGovernor governor(GovernorLimits{}, nullptr, &injector);
  LocalTypeIndex index(g, 1, 1, &governor);
  EXPECT_EQ(index.build_status(), RunStatus::kBudgetExhausted);
  EXPECT_EQ(index.indexed_vertices(), 3);
  index.Lookup(2);  // indexed before the trip
  LocalTypeIndex full(g, 1, 1);
  EXPECT_EQ(full.build_status(), RunStatus::kComplete);
  EXPECT_EQ(full.indexed_vertices(), 12);
}

// --- Governed VC search ------------------------------------------------

TEST(GovernedVc, TripYieldsLowerBound) {
  Graph g = MakeCycle(6);
  AddPeriodicColor(g, "Red", 2, 0);
  VcOptions ungoverned_options;
  ungoverned_options.ell = 1;
  VcResult full = ComputeVcDimension(g, 1, ungoverned_options);
  EXPECT_EQ(full.status, RunStatus::kComplete);
  FaultInjector injector(10);
  ResourceGovernor governor(GovernorLimits{}, nullptr, &injector);
  VcOptions options;
  options.ell = 1;
  options.governor = &governor;
  VcResult partial = ComputeVcDimension(g, 1, options);
  EXPECT_TRUE(IsInterrupted(partial.status));
  EXPECT_LE(partial.vc_dimension, full.vc_dimension);
}

// --- Governed evaluators -----------------------------------------------

TEST(GovernedEvaluator, TinyWorkBudgetInterrupts) {
  Graph g = MakePath(8);
  FormulaRef f = MustParseFormula("exists x. exists y. E(x, y)");
  GovernorLimits limits;
  limits.max_work = 2;
  ResourceGovernor governor(limits);
  EvalOptions options;
  options.governor = &governor;
  EvalStats stats;
  EvaluateSentence(g, f, options, &stats);
  EXPECT_EQ(stats.status, RunStatus::kBudgetExhausted);
}

TEST(GovernedEvaluator, CompleteWithinBudgetMatchesUngoverned) {
  Graph g = MakeCycle(5);
  FormulaRef f = MustParseFormula("forall x. exists y. E(x, y)");
  bool plain = EvaluateSentence(g, f);
  GovernorLimits limits;
  limits.max_work = 1000000;
  ResourceGovernor governor(limits);
  EvalOptions options;
  options.governor = &governor;
  EvalStats stats;
  bool governed = EvaluateSentence(g, f, options, &stats);
  EXPECT_EQ(stats.status, RunStatus::kComplete);
  EXPECT_EQ(governed, plain);
}

TEST(GovernedBottomUp, GenerousBudgetMatchesUngoverned) {
  Graph g = MakeCycle(5);
  FormulaRef f = MustParseFormula("exists y. (E(x1, y) & E(y, x2))");
  Relation plain = EvaluateBottomUp(g, f);
  GovernorLimits limits;
  limits.max_work = 1000000;
  ResourceGovernor governor(limits);
  EvalOptions options;
  options.governor = &governor;
  EvalStats stats;
  Relation governed = EvaluateBottomUp(g, f, options, &stats);
  EXPECT_EQ(stats.status, RunStatus::kComplete);
  EXPECT_EQ(governed.vars, plain.vars);
  EXPECT_EQ(governed.rows, plain.rows);
}

TEST(GovernedBottomUp, TinyBudgetReportsInterruption) {
  Graph g = MakeCycle(8);
  FormulaRef f = MustParseFormula("exists y. (E(x1, y) & E(y, x2))");
  GovernorLimits limits;
  limits.max_work = 2;
  ResourceGovernor governor(limits);
  EvalOptions options;
  options.governor = &governor;
  EvalStats stats;
  EvaluateBottomUp(g, f, options, &stats);
  EXPECT_EQ(stats.status, RunStatus::kBudgetExhausted);
}

// --- Governed hardness reduction ---------------------------------------

TEST(GovernedHardness, GenerousBudgetAgreesWithDirectEvaluation) {
  Graph g = MakePath(5);
  FormulaRef sentence = MustParseFormula("exists x. exists y. E(x, y)");
  GovernorLimits limits;
  limits.max_work = 1000000000;
  ResourceGovernor governor(limits);
  TypeErmOracle oracle(0, &governor);
  ModelCheckOptions options;
  options.governor = &governor;
  HardnessStats stats;
  bool value = ModelCheckViaErm(g, sentence, oracle, options, &stats);
  EXPECT_EQ(stats.status, RunStatus::kComplete);
  EXPECT_EQ(value, EvaluateSentence(g, sentence));
}

TEST(GovernedHardness, InjectedTripRecordsInterruption) {
  Graph g = MakePath(6);
  FormulaRef sentence = MustParseFormula("exists x. exists y. E(x, y)");
  FaultInjector injector(2);
  ResourceGovernor governor(GovernorLimits{}, nullptr, &injector);
  TypeErmOracle oracle(0, &governor);
  ModelCheckOptions options;
  options.governor = &governor;
  HardnessStats stats;
  ModelCheckViaErm(g, sentence, oracle, options, &stats);
  EXPECT_TRUE(IsInterrupted(stats.status));
}

// --- MSO budget sizing -------------------------------------------------

TEST(GovernedMso, WorkBoundIsSufficientBudget) {
  Graph g = MakeCycle(6);
  FormulaRef bipartite = MsoBipartiteSentence();
  int64_t bound = MsoEvaluationWorkBound(bipartite, g.order());
  EXPECT_GE(bound, int64_t{1} << g.order());
  GovernorLimits limits;
  limits.max_work = bound;
  ResourceGovernor governor(limits);
  EvalOptions options;
  options.governor = &governor;
  EvalStats stats;
  bool value = EvaluateSentence(g, bipartite, options, &stats);
  EXPECT_EQ(stats.status, RunStatus::kComplete);
  EXPECT_TRUE(value);  // even cycle
}

TEST(GovernedMso, SubsetEnumerationInterrupts) {
  Graph g = MakeCycle(5);  // odd cycle: no early exit, all 2^5 subsets
  GovernorLimits limits;
  limits.max_work = 8;
  ResourceGovernor governor(limits);
  EvalOptions options;
  options.governor = &governor;
  EvalStats stats;
  EvaluateSentence(g, MsoBipartiteSentence(), options, &stats);
  EXPECT_EQ(stats.status, RunStatus::kBudgetExhausted);
}

}  // namespace
}  // namespace folearn
