#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/invariants.h"
#include "nd/wcol.h"
#include "util/rng.h"

namespace folearn {
namespace {

TEST(Degeneracy, KnownValues) {
  EXPECT_EQ(ComputeDegeneracy(MakePath(10)).degeneracy, 1);
  EXPECT_EQ(ComputeDegeneracy(MakeCycle(10)).degeneracy, 2);
  EXPECT_EQ(ComputeDegeneracy(MakeComplete(6)).degeneracy, 5);
  EXPECT_EQ(ComputeDegeneracy(MakeStar(20)).degeneracy, 1);
  EXPECT_EQ(ComputeDegeneracy(MakeGrid(5, 5)).degeneracy, 2);
  EXPECT_EQ(ComputeDegeneracy(MakeCompleteBipartite(3, 7)).degeneracy, 3);
}

TEST(Degeneracy, TreesAreOneDegenerate) {
  Rng rng(12);
  for (int trial = 0; trial < 5; ++trial) {
    Graph tree = MakeRandomTree(40, rng);
    DegeneracyResult result = ComputeDegeneracy(tree);
    EXPECT_EQ(result.degeneracy, 1);
    EXPECT_EQ(result.order.size(), 40u);
  }
}

TEST(Degeneracy, OrderIsAPermutation) {
  Rng rng(13);
  Graph g = MakeErdosRenyi(30, 0.2, rng);
  DegeneracyResult result = ComputeDegeneracy(g);
  std::vector<Vertex> sorted = result.order;
  std::sort(sorted.begin(), sorted.end());
  for (Vertex v = 0; v < g.order(); ++v) EXPECT_EQ(sorted[v], v);
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(ComputeDiameter(MakePath(10)), 9);
  EXPECT_EQ(ComputeDiameter(MakeCycle(10)), 5);
  EXPECT_EQ(ComputeDiameter(MakeComplete(5)), 1);
  EXPECT_EQ(ComputeDiameter(MakeGrid(4, 3)), 5);
  EXPECT_EQ(ComputeDiameter(Graph(3)), 0);  // isolated vertices
}

TEST(Girth, KnownValues) {
  EXPECT_EQ(ComputeGirth(MakeCycle(5)), 5);
  EXPECT_EQ(ComputeGirth(MakeCycle(8)), 8);
  EXPECT_EQ(ComputeGirth(MakeComplete(4)), 3);
  EXPECT_EQ(ComputeGirth(MakeGrid(3, 3)), 4);
  EXPECT_EQ(ComputeGirth(MakePath(10)), kNoGirth);
  EXPECT_EQ(ComputeGirth(MakeStar(5)), kNoGirth);
  EXPECT_EQ(ComputeGirth(MakeCompleteBipartite(2, 3)), 4);
}

TEST(IsForest, DetectsForests) {
  Rng rng(14);
  EXPECT_TRUE(IsForest(MakeRandomTree(25, rng)));
  EXPECT_TRUE(IsForest(MakeStar(9)));
  EXPECT_TRUE(IsForest(DisjointUnion(MakePath(4), MakePath(5))));
  EXPECT_FALSE(IsForest(MakeCycle(3)));
  EXPECT_FALSE(IsForest(MakeGrid(2, 2)));
}

TEST(Treedepth, ExactKnownValues) {
  EXPECT_EQ(ExactTreedepth(Graph(1)), 1);
  EXPECT_EQ(ExactTreedepth(MakePath(1)), 1);
  EXPECT_EQ(ExactTreedepth(MakePath(2)), 2);
  EXPECT_EQ(ExactTreedepth(MakePath(3)), 2);
  EXPECT_EQ(ExactTreedepth(MakePath(7)), 3);   // ⌈log₂(n+1)⌉
  EXPECT_EQ(ExactTreedepth(MakePath(8)), 4);
  EXPECT_EQ(ExactTreedepth(MakeStar(6)), 2);
  EXPECT_EQ(ExactTreedepth(MakeComplete(5)), 5);
  EXPECT_EQ(ExactTreedepth(MakeCycle(4)), 3);
}

TEST(Treedepth, CentroidBoundIsSoundAndTightOnPaths) {
  // Sound: bound ≥ exact; tight on paths.
  for (int n : {1, 2, 3, 7, 8, 9}) {
    Graph path = MakePath(n);
    int bound = TreedepthUpperBoundForest(path);
    int exact = ExactTreedepth(path);
    EXPECT_GE(bound, exact) << "n=" << n;
    EXPECT_EQ(bound, exact) << "n=" << n;  // centroid is optimal on paths
  }
  Rng rng(15);
  for (int trial = 0; trial < 5; ++trial) {
    Graph tree = MakeRandomTree(9, rng);
    EXPECT_GE(TreedepthUpperBoundForest(tree), ExactTreedepth(tree));
  }
}

TEST(Treedepth, CentroidBoundLogarithmicOnLargePaths) {
  EXPECT_LE(TreedepthUpperBoundForest(MakePath(1000)), 11);
  EXPECT_LE(TreedepthUpperBoundForest(MakePath(255)), 8);
}

TEST(Treedepth, NonForestDiesOnCentroidBound) {
  EXPECT_DEATH(TreedepthUpperBoundForest(MakeCycle(4)), "forest");
}

TEST(Degeneracy, SubdividedCliqueIsTwoDegenerate) {
  // The degeneracy-vs-nowhere-density separator: 2-degenerate…
  EXPECT_EQ(ComputeDegeneracy(MakeSubdividedComplete(8)).degeneracy, 2);
}

// --- Weak colouring numbers ----------------------------------------------------

TEST(Wcol, RadiusZeroIsOne) {
  Rng rng(16);
  Graph g = MakeErdosRenyi(15, 0.3, rng);
  EXPECT_EQ(WeakColoringNumberDegeneracyOrder(g, 0), 1);
}

TEST(Wcol, RadiusOneIsColoringNumberBound) {
  // wcol_1 under the reverse degeneracy order ≤ degeneracy + 1.
  Rng rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = MakeErdosRenyi(25, 0.15, rng);
    int degeneracy = ComputeDegeneracy(g).degeneracy;
    EXPECT_LE(WeakColoringNumberDegeneracyOrder(g, 1), degeneracy + 1);
  }
}

TEST(Wcol, MonotoneInRadius) {
  Rng rng(18);
  Graph g = MakeRandomTree(40, rng);
  int previous = 0;
  for (int r = 0; r <= 4; ++r) {
    int wcol = WeakColoringNumberDegeneracyOrder(g, r);
    EXPECT_GE(wcol, previous);
    previous = wcol;
  }
}

TEST(Wcol, CliqueIsN) {
  // On K_n any order gives wcol_r = n for r ≥ 1: from the largest vertex
  // every other vertex is a direct neighbour and path-minimal.
  Graph g = MakeComplete(7);
  EXPECT_EQ(WeakColoringNumberDegeneracyOrder(g, 1), 7);
}

TEST(Wcol, PathIsSmall) {
  // Paths have wcol_r ≤ r + 1 under a good order; the heuristic should
  // stay well below n.
  Graph g = MakePath(200);
  for (int r : {1, 2, 3}) {
    EXPECT_LE(WeakColoringNumberDegeneracyOrder(g, r), 2 * r + 2) << r;
  }
}

TEST(Wcol, IdentityOrderOnPath) {
  // Under the identity order on a path, from vertex v only vertices
  // u ≤ v with u ≥ v − r are weakly reachable (the path to smaller u
  // passes through even smaller ranks… actually through decreasing
  // vertices, each ≥ u). |WReach_r| = min(v, r) + 1 ≤ r + 1.
  Graph g = MakePath(50);
  std::vector<Vertex> identity(g.order());
  for (Vertex v = 0; v < g.order(); ++v) identity[v] = v;
  EXPECT_EQ(WeakColoringNumber(g, identity, 3), 4);
}

}  // namespace
}  // namespace folearn
