// Disk-fault matrix: every durable writer (WriteFileAtomic, the
// checkpoint envelope, the session journal, the .fog graph pack) is
// driven through every failure mode at every write site — temp-file open
// refused, short write, fsync failure, rename failure — plus mmap
// failure on the .fog read side. The invariant under test: an injected
// fault surfaces as a Status, the bytes previously at the final path are
// untouched (no torn file), and a plain retry produces byte-identical
// durable state.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "graph/fog.h"
#include "graph/generators.h"
#include "server/session_store.h"
#include "util/checkpoint.h"
#include "util/mem_budget.h"
#include "util/status.h"

namespace folearn {
namespace {

using DiskMode = ResourceFaults::DiskMode;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

const DiskMode kAllDiskModes[] = {DiskMode::kOpenFail, DiskMode::kShortWrite,
                                  DiskMode::kSyncFail, DiskMode::kRenameFail};

const char* DiskModeName(DiskMode mode) {
  switch (mode) {
    case DiskMode::kNone: return "none";
    case DiskMode::kOpenFail: return "open-fail";
    case DiskMode::kShortWrite: return "short-write";
    case DiskMode::kSyncFail: return "sync-fail";
    case DiskMode::kRenameFail: return "rename-fail";
  }
  return "?";
}

// Reads the raw bytes at `path`, or nullopt-style empty marker when the
// file does not exist (distinct from an empty file for our purposes:
// the assertions below only ever compare against known non-empty
// content).
std::string RawBytesOrEmpty(const std::string& path) {
  StatusOr<std::string> contents = ReadFileToString(path);
  return contents.ok() ? *contents : std::string();
}

class DiskFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { ResourceFaults::Instance().Reset(); }
  void TearDown() override { ResourceFaults::Instance().Reset(); }
};

// ---------------------------------------------------------------------
// WriteFileAtomic: the primitive every durable writer sits on.

TEST_F(DiskFaultTest, WriteFileAtomicSurvivesEveryFaultMode) {
  const std::string path = TempPath("atomic_fault.txt");
  const std::string old_content = "generation-1 payload\n";
  const std::string new_content = "generation-2 payload, longer than one\n";
  for (DiskMode mode : kAllDiskModes) {
    SCOPED_TRACE(DiskModeName(mode));
    ResourceFaults::Instance().Reset();
    std::remove(path.c_str());
    ASSERT_TRUE(WriteFileAtomic(path, old_content).ok());

    ResourceFaults::Instance().ArmDiskFailure(1, mode);
    Status faulted = WriteFileAtomic(path, new_content);
    EXPECT_FALSE(faulted.ok()) << faulted.message();
    // The final path still holds generation 1, byte for byte — an
    // interrupted overwrite never tears the published file.
    EXPECT_EQ(RawBytesOrEmpty(path), old_content);

    // The fault was one-shot: the plain retry succeeds and publishes
    // generation 2 exactly.
    Status retried = WriteFileAtomic(path, new_content);
    ASSERT_TRUE(retried.ok()) << retried.message();
    EXPECT_EQ(RawBytesOrEmpty(path), new_content);
  }
}

TEST_F(DiskFaultTest, WriteFileAtomicFreshFileLeavesNothingOnFault) {
  // When no previous generation exists, a faulted write must not conjure
  // a partial file at the final path.
  for (DiskMode mode : kAllDiskModes) {
    SCOPED_TRACE(DiskModeName(mode));
    ResourceFaults::Instance().Reset();
    const std::string path =
        TempPath(std::string("atomic_fresh_") + DiskModeName(mode));
    std::remove(path.c_str());
    ResourceFaults::Instance().ArmDiskFailure(1, mode);
    EXPECT_FALSE(WriteFileAtomic(path, "payload").ok());
    EXPECT_FALSE(ReadFileToString(path).ok())
        << "torn file published at final path";
    ASSERT_TRUE(WriteFileAtomic(path, "payload").ok());
    EXPECT_EQ(RawBytesOrEmpty(path), "payload");
  }
}

// ---------------------------------------------------------------------
// Checkpoint envelope: fault at every site of a two-write sequence.

TEST_F(DiskFaultTest, CheckpointWriterSweepAllSitesAllModes) {
  const std::string path = TempPath("ckpt_fault.bin");
  const std::string payload_a(300, 'a');
  const std::string payload_b(500, 'b');

  // Size the sweep: count the durable-write sites one checkpoint update
  // touches, then replay the workload once per (site, mode) pair.
  ResourceFaults::Instance().Reset();
  std::remove(path.c_str());
  ASSERT_TRUE(WriteCheckpointFile(path, payload_a).ok());
  const int64_t before = ResourceFaults::Instance().disk_writes();
  ASSERT_TRUE(WriteCheckpointFile(path, payload_b).ok());
  const int64_t sites = ResourceFaults::Instance().disk_writes() - before;
  ASSERT_GE(sites, 1);

  for (DiskMode mode : kAllDiskModes) {
    for (int64_t site = 1; site <= sites; ++site) {
      SCOPED_TRACE(std::string(DiskModeName(mode)) + " at site " +
                   std::to_string(site));
      ResourceFaults::Instance().Reset();
      std::remove(path.c_str());
      ASSERT_TRUE(WriteCheckpointFile(path, payload_a).ok());

      ResourceFaults::Instance().ArmDiskFailure(site, mode);
      EXPECT_FALSE(WriteCheckpointFile(path, payload_b).ok());
      // Recovery invariant: the envelope at the final path still decodes
      // to the previous payload — the checksum catches any tear.
      StatusOr<std::string> read_back = ReadCheckpointFile(path);
      ASSERT_TRUE(read_back.ok()) << read_back.status().message();
      EXPECT_EQ(*read_back, payload_a);

      ASSERT_TRUE(WriteCheckpointFile(path, payload_b).ok());
      StatusOr<std::string> recovered = ReadCheckpointFile(path);
      ASSERT_TRUE(recovered.ok());
      EXPECT_EQ(*recovered, payload_b);
    }
  }
}

// ---------------------------------------------------------------------
// Session journal: a faulted Save leaves the stored record loadable and
// byte-identical to the last acknowledged generation.

SessionRecord MakeRecord(uint64_t id, const std::string& tag) {
  SessionRecord record;
  record.id = id;
  record.graph_text = "graph 3\nedge 0 1\nedge 1 2\n# " + tag + "\n";
  // File-backed, so the fingerprint field round-trips through the
  // journal too (text-only records re-derive it from the text).
  record.graph_file = "packs/" + tag + ".fog";
  record.graph_fingerprint = 0x1234 + id;
  record.next_model_id = 3;
  record.models.push_back({1, "model-one " + tag});
  record.models.push_back({2, "model-two " + tag});
  record.learns.push_back({"req-" + tag, "payload-" + tag});
  return record;
}

bool SameRecord(const SessionRecord& a, const SessionRecord& b) {
  return a.id == b.id && a.graph_text == b.graph_text &&
         a.graph_file == b.graph_file &&
         a.graph_fingerprint == b.graph_fingerprint &&
         a.next_model_id == b.next_model_id && a.models == b.models &&
         a.learns == b.learns;
}

TEST_F(DiskFaultTest, SessionJournalSaveSweepAllSitesAllModes) {
  const std::string dir = TempPath("journal_fault_dir");
  SessionStore store(dir);
  ASSERT_TRUE(store.Init().ok());
  const SessionRecord gen1 = MakeRecord(7, "gen1");
  const SessionRecord gen2 = MakeRecord(7, "gen2");

  ResourceFaults::Instance().Reset();
  ASSERT_TRUE(store.Save(gen1).ok());
  const int64_t before = ResourceFaults::Instance().disk_writes();
  ASSERT_TRUE(store.Save(gen2).ok());
  const int64_t sites = ResourceFaults::Instance().disk_writes() - before;
  ASSERT_GE(sites, 1);

  for (DiskMode mode : kAllDiskModes) {
    for (int64_t site = 1; site <= sites; ++site) {
      SCOPED_TRACE(std::string(DiskModeName(mode)) + " at site " +
                   std::to_string(site));
      ResourceFaults::Instance().Reset();
      ASSERT_TRUE(store.Save(gen1).ok());

      ResourceFaults::Instance().ArmDiskFailure(site, mode);
      EXPECT_FALSE(store.Save(gen2).ok());
      StatusOr<SessionRecord> loaded = store.Load(7);
      ASSERT_TRUE(loaded.ok()) << loaded.status().message();
      EXPECT_TRUE(SameRecord(*loaded, gen1))
          << "faulted save must leave the previous generation intact";

      ASSERT_TRUE(store.Save(gen2).ok());
      StatusOr<SessionRecord> recovered = store.Load(7);
      ASSERT_TRUE(recovered.ok());
      EXPECT_TRUE(SameRecord(*recovered, gen2));
    }
  }
}

// ---------------------------------------------------------------------
// Graph pack (.fog): faulted writes never tear, and a failed mmap on the
// read side is a governed Status, not UB.

TEST_F(DiskFaultTest, FogWriterSurvivesEveryFaultMode) {
  const std::string path = TempPath("fault.fog");
  Graph small = MakePath(6);
  small.Finalize();
  Graph big = MakeCycle(64);
  big.Finalize();
  uint64_t small_fp = 0;
  uint64_t big_fp = 0;
  {
    // Reference fingerprints from clean writes.
    ResourceFaults::Instance().Reset();
    ASSERT_TRUE(WriteFogFile(path, small).ok());
    ASSERT_TRUE(LoadFogFile(path, &small_fp).ok());
    ASSERT_TRUE(WriteFogFile(path, big).ok());
    ASSERT_TRUE(LoadFogFile(path, &big_fp).ok());
    ASSERT_NE(small_fp, big_fp);
  }

  for (DiskMode mode : kAllDiskModes) {
    SCOPED_TRACE(DiskModeName(mode));
    ResourceFaults::Instance().Reset();
    std::remove(path.c_str());
    ASSERT_TRUE(WriteFogFile(path, small).ok());

    ResourceFaults::Instance().ArmDiskFailure(1, mode);
    EXPECT_FALSE(WriteFogFile(path, big).ok());
    uint64_t fp = 0;
    StatusOr<Graph> read_back = LoadFogFile(path, &fp);
    ASSERT_TRUE(read_back.ok()) << read_back.status().message();
    EXPECT_EQ(fp, small_fp) << "faulted pack write tore the published file";
    EXPECT_EQ(read_back->order(), small.order());

    ASSERT_TRUE(WriteFogFile(path, big).ok());
    fp = 0;
    StatusOr<Graph> recovered = LoadFogFile(path, &fp);
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ(fp, big_fp);
    EXPECT_EQ(recovered->order(), big.order());
  }
}

TEST_F(DiskFaultTest, FogMmapFailureIsAStatusAndRecovers) {
  const std::string path = TempPath("mmap_fault.fog");
  Graph g = MakeCycle(32);
  g.Finalize();
  ASSERT_TRUE(WriteFogFile(path, g).ok());

  // Arm before the first load: successful mappings are cached per inode,
  // so only a fresh mapping reaches the mmap fault site.
  ResourceFaults::Instance().ArmMmapFailure(1);
  StatusOr<Graph> faulted = LoadFogFile(path);
  EXPECT_FALSE(faulted.ok());

  // One-shot: the next load maps the identical, un-torn pack.
  uint64_t fp = 0;
  StatusOr<Graph> recovered = LoadFogFile(path, &fp);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_NE(fp, 0u);
  EXPECT_EQ(recovered->order(), g.order());
}

}  // namespace
}  // namespace folearn
