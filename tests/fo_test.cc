#include <gtest/gtest.h>

#include "fo/enumerate.h"
#include "fo/formula.h"
#include "fo/parser.h"
#include "fo/printer.h"
#include "fo/transform.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "mc/evaluator.h"

namespace folearn {
namespace {

TEST(Formula, ConstructorsFoldConstants) {
  EXPECT_EQ(Formula::And(Formula::True(), Formula::False())->kind(),
            FormulaKind::kFalse);
  EXPECT_EQ(Formula::Or(Formula::True(), Formula::False())->kind(),
            FormulaKind::kTrue);
  EXPECT_EQ(Formula::Not(Formula::Not(Formula::Edge("x", "y")))->kind(),
            FormulaKind::kEdge);
  EXPECT_EQ(Formula::Equals("x", "x")->kind(), FormulaKind::kTrue);
  EXPECT_EQ(Formula::Edge("x", "x")->kind(), FormulaKind::kFalse);
  EXPECT_EQ(Formula::Exists("x", Formula::True())->kind(),
            FormulaKind::kTrue);
}

TEST(Formula, NaryFlattening) {
  FormulaRef a = Formula::Color("A", "x");
  FormulaRef b = Formula::Color("B", "x");
  FormulaRef c = Formula::Color("C", "x");
  FormulaRef nested = Formula::And(Formula::And(a, b), c);
  EXPECT_EQ(nested->kind(), FormulaKind::kAnd);
  EXPECT_EQ(nested->children().size(), 3u);
}

TEST(Formula, QuantifierRankAndFreeVariables) {
  FormulaRef f = MustParseFormula(
      "exists z. (E(x, z) & forall w. (E(z, w) -> Red(w)))");
  EXPECT_EQ(f->quantifier_rank(), 2);
  EXPECT_EQ(f->free_variables(), std::vector<std::string>{"x"});
  EXPECT_TRUE(f->HasFreeVariable("x"));
  EXPECT_FALSE(f->HasFreeVariable("z"));
}

TEST(Formula, SharedSubformulaDagSize) {
  FormulaRef atom = Formula::Edge("x", "y");
  FormulaRef f = Formula::Or(Formula::Not(atom), Formula::And(atom, atom));
  // And(atom, atom) dedups shared nodes; the DAG stays small.
  EXPECT_LE(f->DagSize(), 4);
}

TEST(Parser, RoundTripsThroughPrinter) {
  const char* inputs[] = {
      "E(x, y)",
      "Red(x)",
      "x = y",
      "true",
      "false",
      "!E(x, y)",
      "E(x, y) & Red(x) & Blue(y)",
      "E(x, y) | x = y",
      "exists z. E(x, z)",
      "forall z. (E(x, z) -> Red(z))",
      "exists a. forall b. (E(a, b) | a = b)",
  };
  for (const char* input : inputs) {
    FormulaRef once = MustParseFormula(input);
    FormulaRef twice = MustParseFormula(ToString(once));
    EXPECT_EQ(ToString(once), ToString(twice)) << input;
  }
}

TEST(Parser, PrecedenceNotBindsTighterThanAndThanOr) {
  FormulaRef f = MustParseFormula("!A(x) & B(x) | C(x)");
  EXPECT_EQ(f->kind(), FormulaKind::kOr);
  EXPECT_EQ(f->child(0)->kind(), FormulaKind::kAnd);
  EXPECT_EQ(f->child(0)->child(0)->kind(), FormulaKind::kNot);
}

TEST(Parser, ImplicationDesugars) {
  FormulaRef f = MustParseFormula("A(x) -> B(x)");
  EXPECT_EQ(f->kind(), FormulaKind::kOr);
  EXPECT_EQ(f->child(0)->kind(), FormulaKind::kNot);
}

TEST(Parser, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(ParseFormula("E(x)", &error).has_value());
  EXPECT_FALSE(ParseFormula("exists . E(x, y)", &error).has_value());
  EXPECT_FALSE(ParseFormula("E(x, y) &", &error).has_value());
  EXPECT_FALSE(ParseFormula("(E(x, y)", &error).has_value());
  EXPECT_FALSE(ParseFormula("E(x, y) E(y, z)", &error).has_value());
  EXPECT_FALSE(ParseFormula("x", &error).has_value());
  EXPECT_FALSE(ParseFormula("@", &error).has_value());
  EXPECT_FALSE(ParseFormula("exists E. E(x, y)", &error).has_value());
}

TEST(Transform, RenameFreeVariablesSimple) {
  FormulaRef f = MustParseFormula("E(x, y) & Red(x)");
  FormulaRef renamed = RenameFreeVariables(f, {{"x", "u"}, {"y", "v"}});
  EXPECT_EQ(ToString(renamed), "E(u, v) & Red(u)");
}

TEST(Transform, RenameRespectsBinding) {
  FormulaRef f = MustParseFormula("exists x. E(x, y)");
  FormulaRef renamed = RenameFreeVariables(f, {{"x", "u"}, {"y", "v"}});
  // The bound x is untouched; only free y changes.
  EXPECT_EQ(ToString(renamed), "exists x. E(x, v)");
}

TEST(Transform, RenameAvoidsCapture) {
  // Renaming y ↦ x under a binder for x must alpha-rename the binder.
  FormulaRef f = MustParseFormula("exists x. E(x, y)");
  FormulaRef renamed = RenameFreeVariables(f, {{"y", "x"}});
  // Semantics: "y has a neighbour" with y renamed to x — the bound variable
  // must no longer be called x.
  EXPECT_NE(ToString(renamed), "exists x. E(x, x)");
  Graph g = MakePath(2);
  std::string vars[] = {"x"};
  Vertex tuple[] = {0};
  EXPECT_TRUE(EvaluateQuery(g, renamed, vars, tuple));
}

TEST(Transform, CollectVariableNames) {
  FormulaRef f = MustParseFormula("exists z. (E(x, z) & Red(w))");
  std::set<std::string> names = CollectVariableNames(f);
  EXPECT_EQ(names, (std::set<std::string>{"x", "z", "w"}));
}

TEST(Transform, EliminateVariableViaColors) {
  FormulaRef f = MustParseFormula("exists z. (E(x, z) & Red(x) & z = x)");
  FormulaRef g = EliminateVariableViaColors(
      f, "x", "Pt", "Qt", [](const std::string& color) {
        return color == "Red";
      });
  // E(x,z) ↦ Qt(z); Red(x) ↦ true (folded away); z = x ↦ Pt(z).
  EXPECT_EQ(ToString(g), "exists z. Qt(z) & Pt(z)");
  EXPECT_TRUE(g->free_variables().empty());
}

TEST(Transform, EliminateRespectsShadowing) {
  FormulaRef f = MustParseFormula("E(x, y) & exists x. E(x, y)");
  FormulaRef g = EliminateVariableViaColors(
      f, "x", "Pt", "Qt", [](const std::string&) { return false; });
  EXPECT_EQ(ToString(g), "Qt(y) & (exists x. E(x, y))");
}

TEST(Transform, ReplaceColorsWithFalse) {
  FormulaRef f = MustParseFormula("Pt(x) | (Red(x) & !Qt(x))");
  FormulaRef g = ReplaceColorsWithFalse(f, {"Pt", "Qt"});
  EXPECT_EQ(ToString(g), "Red(x)");
}

TEST(Transform, DistAtMostSemantics) {
  Graph g = MakePath(9);
  std::string vars[] = {"a", "b"};
  for (int d = 0; d <= 5; ++d) {
    FreshVariablePool pool;
    FormulaRef dist = DistAtMost("a", "b", d, pool);
    for (Vertex u : {0, 3}) {
      for (Vertex v = 0; v < g.order(); ++v) {
        Vertex tuple[] = {u, v};
        bool expected = std::abs(u - v) <= d;
        EXPECT_EQ(EvaluateQuery(g, dist, vars, tuple), expected)
            << "d=" << d << " u=" << u << " v=" << v;
      }
    }
  }
}

TEST(Transform, DistAtMostRankIsLogarithmic) {
  FreshVariablePool pool;
  EXPECT_EQ(DistAtMost("a", "b", 1, pool)->quantifier_rank(), 0);
  EXPECT_LE(DistAtMost("a", "b", 8, pool)->quantifier_rank(), 3);
  EXPECT_LE(DistAtMost("a", "b", 100, pool)->quantifier_rank(), 7);
}

TEST(Transform, RelativizeMatchesInducedBall) {
  // An r-relativised formula evaluated in G must agree with the plain
  // formula evaluated in the induced r-ball around the centre.
  Graph g = MakePath(12);
  ColorId c = AddPeriodicColor(g, "Red", 3, 0);
  (void)c;
  FormulaRef f = MustParseFormula("exists z. (E(x, z) & Red(z))");
  const int radius = 2;
  FormulaRef local = RelativizeToBall(f, {"x"}, radius);
  std::string vars[] = {"x"};
  for (Vertex v = 0; v < g.order(); ++v) {
    Vertex tuple[] = {v};
    NeighborhoodGraph nbhd = BuildNeighborhoodGraph(g, tuple, radius);
    Vertex mapped[] = {nbhd.tuple[0]};
    bool in_ball = EvaluateQuery(nbhd.induced.graph, f, vars, mapped);
    bool relativized = EvaluateQuery(g, local, vars, tuple);
    EXPECT_EQ(in_ball, relativized) << "v=" << v;
  }
}

TEST(Transform, RelativizeHandlesForall) {
  Graph g = MakePath(10);
  AddPeriodicColor(g, "Red", 2, 0);
  FormulaRef f = MustParseFormula("forall z. Red(z)");
  const int radius = 1;
  FormulaRef local = RelativizeToBall(f, {"x"}, radius);
  std::string vars[] = {"x"};
  for (Vertex v = 1; v + 1 < g.order(); ++v) {
    Vertex tuple[] = {v};
    // Ball = {v−1, v, v+1}: all red iff impossible (consecutive ints).
    EXPECT_FALSE(EvaluateQuery(g, local, vars, tuple));
  }
  // Relativised ∀ over a ball where all members are red.
  Graph h(3);  // no edges: ball of any vertex is itself
  AddPeriodicColor(h, "Red", 1, 0);
  Vertex tuple[] = {1};
  EXPECT_TRUE(EvaluateQuery(h, local, vars, tuple));
}

TEST(Enumerate, ProducesDistinctFormulasWithinBudget) {
  EnumerationOptions options;
  options.free_variables = {"x"};
  options.colors = {"Red"};
  options.max_quantifier_rank = 1;
  options.max_boolean_depth = 1;
  options.max_count = 500;
  std::vector<FormulaRef> formulas = EnumerateFormulas(options);
  EXPECT_FALSE(formulas.empty());
  EXPECT_LE(static_cast<int>(formulas.size()), 500);
  std::set<std::string> rendered;
  for (const FormulaRef& f : formulas) {
    EXPECT_LE(f->quantifier_rank(), 1);
    rendered.insert(ToString(f));
  }
  EXPECT_EQ(rendered.size(), formulas.size()) << "duplicates emitted";
}

TEST(Enumerate, ContainsBasicAtoms) {
  EnumerationOptions options;
  options.free_variables = {"x", "y"};
  options.colors = {};
  options.max_quantifier_rank = 0;
  options.max_count = 100;
  std::vector<FormulaRef> formulas = EnumerateFormulas(options);
  std::set<std::string> rendered;
  for (const FormulaRef& f : formulas) rendered.insert(ToString(f));
  EXPECT_TRUE(rendered.count("E(x, y)"));
  EXPECT_TRUE(rendered.count("x = y"));
  EXPECT_TRUE(rendered.count("!E(x, y)"));
}

}  // namespace
}  // namespace folearn
