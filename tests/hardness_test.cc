#include <gtest/gtest.h>

#include "fo/parser.h"
#include "fo/printer.h"
#include "graph/generators.h"
#include "learn/hardness.h"
#include "mc/evaluator.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace folearn {
namespace {

// Every sentence checked through the ERM oracle must agree with the direct
// model checker.
void ExpectAgreesWithDirectMc(const Graph& graph, const std::string& text,
                              const ModelCheckOptions& options = {}) {
  FormulaRef sentence = MustParseFormula(text);
  TypeErmOracle oracle(options.use_general_case ? options.general_case_ell
                                                : 0);
  HardnessStats stats;
  bool via_erm = ModelCheckViaErm(graph, sentence, oracle, options, &stats);
  bool direct = EvaluateSentence(graph, sentence);
  EXPECT_EQ(via_erm, direct) << text;
}

TEST(Hardness, BooleanConstantsNoOracle) {
  Graph g = MakePath(3);
  TypeErmOracle oracle;
  HardnessStats stats;
  EXPECT_TRUE(ModelCheckViaErm(g, MustParseFormula("true"), oracle, {},
                               &stats));
  EXPECT_FALSE(ModelCheckViaErm(g, MustParseFormula("false"), oracle, {},
                                &stats));
  EXPECT_EQ(stats.oracle_calls, 0);
}

TEST(Hardness, ExistentialColorSentences) {
  Graph g = MakePath(6);
  AddPeriodicColor(g, "Red", 3, 0);
  ExpectAgreesWithDirectMc(g, "exists x. Red(x)");
  ExpectAgreesWithDirectMc(g, "exists x. !Red(x)");
  Graph empty_color = MakePath(4);
  empty_color.AddColor("Red");
  ExpectAgreesWithDirectMc(empty_color, "exists x. Red(x)");
}

TEST(Hardness, UniversalSentencesViaDualization) {
  Graph g = MakePath(5);
  AddPeriodicColor(g, "Red", 1, 0);  // everything red
  ExpectAgreesWithDirectMc(g, "forall x. Red(x)");
  Graph h = MakePath(5);
  AddPeriodicColor(h, "Red", 2, 0);
  ExpectAgreesWithDirectMc(h, "forall x. Red(x)");
}

TEST(Hardness, RankTwoSentences) {
  // "There is an isolated vertex" and "there is a dominating vertex".
  Graph g = MakePath(4);
  Vertex isolated = g.AddVertex();
  (void)isolated;
  ExpectAgreesWithDirectMc(g, "exists x. forall y. !E(x, y)");
  Graph star = MakeStar(4);
  ExpectAgreesWithDirectMc(star,
                           "exists x. forall y. (E(x, y) | x = y)");
  ExpectAgreesWithDirectMc(MakeCycle(5),
                           "exists x. forall y. (E(x, y) | x = y)");
}

TEST(Hardness, BooleanCombinationsOfQuantifiedSentences) {
  Graph g = MakeCycle(6);
  AddPeriodicColor(g, "Red", 2, 0);
  ExpectAgreesWithDirectMc(
      g, "exists x. Red(x) & exists y. !Red(y)");
  ExpectAgreesWithDirectMc(
      g, "exists x. Red(x) -> exists y. E(y, y)");
  ExpectAgreesWithDirectMc(g, "!exists x. forall y. E(x, y)");
}

TEST(Hardness, OracleCallCountIsQuadraticPerLevel) {
  Graph g = MakePath(7);
  TypeErmOracle oracle;
  HardnessStats stats;
  ModelCheckViaErm(g, MustParseFormula("exists x. forall y. !E(x, y)"),
                   oracle, {}, &stats);
  // Top level: C(7,2) = 21 calls; recursion adds more per representative.
  EXPECT_GE(stats.oracle_calls, 21);
  EXPECT_GT(stats.max_representatives, 0);
  EXPECT_GT(stats.triples_removed, 0);  // a 7-path has ≤ 4 vertex 1-types
  EXPECT_EQ(stats.oracle_calls, oracle.calls());
}

TEST(Hardness, RepresentativePruningKeepsAllTypes) {
  // On a path, rank-0 pruning must keep at most a handful of reps but
  // still answer correctly for a colour present at exactly one vertex.
  Graph g = MakePath(9);
  ColorId c = g.AddColor("Special");
  g.SetColor(4, c);
  ExpectAgreesWithDirectMc(g, "exists x. Special(x)");
  ExpectAgreesWithDirectMc(g, "exists x. (Special(x) & exists y. E(x, y))");
}

TEST(Hardness, RandomGraphSweepRankTwo) {
  Rng rng(8);
  const char* sentences[] = {
      "exists x. exists y. (E(x, y) & Red(x) & !Red(y))",
      "forall x. exists y. E(x, y)",
      "exists x. (Red(x) & forall y. (E(x, y) -> !Red(y)))",
  };
  for (int trial = 0; trial < 3; ++trial) {
    Graph g = MakeErdosRenyi(7, 0.3, rng);
    AddRandomColors(g, {"Red"}, 0.5, rng);
    for (const char* s : sentences) {
      ExpectAgreesWithDirectMc(g, s);
    }
  }
}

TEST(Hardness, GeneralCaseMatchesBaseCase) {
  // The 2ℓ-copies construction must compute the same answers.
  ModelCheckOptions general;
  general.use_general_case = true;
  general.general_case_ell = 1;
  Rng rng(15);
  Graph g = MakeRandomTree(6, rng);
  AddRandomColors(g, {"Red"}, 0.5, rng);
  ExpectAgreesWithDirectMc(g, "exists x. Red(x)", general);
  ExpectAgreesWithDirectMc(g, "exists x. (Red(x) & exists y. E(x, y))",
                           general);
  ExpectAgreesWithDirectMc(g, "forall x. exists y. E(x, y)", general);
}

TEST(Hardness, RealisableCaseOnlyRemark10) {
  // The reduction uses oracle answers only when a consistent hypothesis
  // exists (ε* = 0); an oracle that is garbage on unrealisable inputs must
  // not break it. Wrap the canonical oracle and return "false" whenever
  // no 0-error hypothesis exists.
  class RealisableOnlyOracle : public ErmOracle {
   public:
    Hypothesis Solve(const Graph& graph, const TrainingSet& examples, int k,
                     int ell_star, int rank_star, double epsilon) override {
      Hypothesis h =
          inner_.Solve(graph, examples, k, ell_star, rank_star, epsilon);
      if (TrainingError(graph, h, examples) > 0.0) {
        // Garbage answer in the unrealisable case.
        return Hypothesis{Formula::False(), QueryVars(k), {}, {}};
      }
      return h;
    }
    TypeErmOracle inner_;
  };
  Graph g = MakePath(6);
  AddPeriodicColor(g, "Red", 3, 0);
  RealisableOnlyOracle oracle;
  FormulaRef sentence =
      MustParseFormula("exists x. (Red(x) & exists y. E(x, y))");
  EXPECT_EQ(ModelCheckViaErm(g, sentence, oracle),
            EvaluateSentence(g, sentence));
}

// Property sweep: random FO sentences (from the random-AST generator) on
// random graphs must agree with direct model checking through the
// reduction. Counting is excluded (the reduction is a plain-FO result).
struct HardnessSweepParam {
  GraphFamily family;
  int seed;
};

class HardnessSweep : public ::testing::TestWithParam<HardnessSweepParam> {};

TEST_P(HardnessSweep, RandomSentencesAgreeWithDirectMc) {
  Rng rng(GetParam().seed);
  Graph g = MakeFamilyGraph(GetParam().family, 6, rng);
  AddRandomColors(g, {"Red"}, 0.5, rng);
  int checked = 0;
  for (int i = 0; i < 60 && checked < 12; ++i) {
    FormulaRef f = RandomFormula(rng, /*vars=*/{}, {"Red"},
                                 /*quantifier_budget=*/2, /*depth=*/4,
                                 /*allow_counting=*/false);
    if (!f->free_variables().empty()) continue;
    if (f->quantifier_rank() == 0) continue;  // constants need no oracle
    ++checked;
    TypeErmOracle oracle;
    bool reduced = ModelCheckViaErm(g, f, oracle);
    bool direct = EvaluateSentence(g, f);
    ASSERT_EQ(reduced, direct) << ToString(f);
  }
  EXPECT_GE(checked, 5);
}

INSTANTIATE_TEST_SUITE_P(
    Families, HardnessSweep,
    ::testing::Values(HardnessSweepParam{GraphFamily::kPath, 201},
                      HardnessSweepParam{GraphFamily::kCycle, 202},
                      HardnessSweepParam{GraphFamily::kRandomTree, 203},
                      HardnessSweepParam{GraphFamily::kErdosRenyiSparse, 204},
                      HardnessSweepParam{GraphFamily::kStar, 205}),
    [](const ::testing::TestParamInfo<HardnessSweepParam>& info) {
      return std::string(FamilyName(info.param.family)) + "_" +
             std::to_string(info.param.seed);
    });

TEST(Hardness, NonSentenceDies) {
  Graph g = MakePath(3);
  TypeErmOracle oracle;
  EXPECT_DEATH(ModelCheckViaErm(g, MustParseFormula("E(x, y)"), oracle),
               "sentence");
}

}  // namespace
}  // namespace folearn
