#include <gtest/gtest.h>

#include "db/database.h"
#include "db/encoding.h"
#include "graph/algorithms.h"
#include "learn/erm.h"
#include "mc/evaluator.h"
#include "util/rng.h"

namespace folearn {
namespace {

Database MakeMovieDb() {
  Schema schema;
  schema.AddRelation("Directed", 2);  // (director, movie)
  schema.AddRelation("ActedIn", 2);   // (actor, movie)
  schema.AddRelation("Person", 1);
  schema.AddRelation("Movie", 1);
  // Domain: 0-2 people, 3-5 movies.
  Database db(schema, 6);
  for (int p = 0; p <= 2; ++p) db.AddTuple("Person", {p});
  for (int m = 3; m <= 5; ++m) db.AddTuple("Movie", {m});
  db.AddTuple("Directed", {0, 3});
  db.AddTuple("Directed", {0, 4});
  db.AddTuple("Directed", {1, 5});
  db.AddTuple("ActedIn", {1, 3});
  db.AddTuple("ActedIn", {2, 3});
  db.AddTuple("ActedIn", {2, 4});
  db.AddTuple("ActedIn", {1, 5});  // 1 acted in their own movie
  return db;
}

TEST(Database, SchemaAndTuples) {
  Database db = MakeMovieDb();
  EXPECT_EQ(db.domain_size(), 6);
  EXPECT_TRUE(db.Contains("Directed", {0, 3}));
  EXPECT_FALSE(db.Contains("Directed", {3, 0}));
  EXPECT_EQ(db.Tuples("ActedIn").size(), 4u);
  EXPECT_EQ(db.TotalTuples(), 13);
  EXPECT_EQ(db.schema().Find("Movie")->arity, 1);
  EXPECT_EQ(db.schema().Find("Nope"), nullptr);
}

TEST(Database, BoundsChecked) {
  Schema schema;
  schema.AddRelation("R", 2);
  Database db(schema, 3);
  EXPECT_DEATH(db.AddTuple("R", {0, 3}), "domain");
  EXPECT_DEATH(db.AddTuple("R", {0}), "");
  EXPECT_DEATH(db.AddTuple("S", {0, 1}), "unknown relation");
}

TEST(Encoding, StructureCounts) {
  Database db = MakeMovieDb();
  EncodedDatabase encoded = EncodeDatabase(db);
  // Vertices: 6 elements + Σ tuples · (1 + arity):
  // unary tuples: 6 · 2 = 12; binary: 7 · 3 = 21 → 6 + 33 = 39.
  EXPECT_EQ(encoded.graph.order(), 39);
  EXPECT_TRUE(ValidateGraph(encoded.graph));
  // Every element vertex is coloured Elem.
  ColorId elem = *encoded.graph.FindColor(ElementColorName());
  EXPECT_EQ(encoded.graph.VerticesWithColor(elem).size(), 6u);
}

TEST(Encoding, RelationAtomSemanticsMatchDatabase) {
  Database db = MakeMovieDb();
  EncodedDatabase encoded = EncodeDatabase(db);
  FormulaRef atom = RelationAtom("Directed", {"x1", "x2"});
  std::string vars[] = {"x1", "x2"};
  for (int a = 0; a < db.domain_size(); ++a) {
    for (int b = 0; b < db.domain_size(); ++b) {
      Vertex tuple[] = {encoded.VertexOf(a), encoded.VertexOf(b)};
      EXPECT_EQ(EvaluateQuery(encoded.graph, atom, vars, tuple),
                db.Contains("Directed", {a, b}))
          << a << "," << b;
    }
  }
}

TEST(Encoding, TranslatedJoinQuery) {
  // "x1 directed a movie in which x2 acted":
  // ∃m (Elem(m) ∧ Directed(x1, m) ∧ ActedIn(x2, m)).
  Database db = MakeMovieDb();
  EncodedDatabase encoded = EncodeDatabase(db);
  FormulaRef query = ExistsElem(
      "m", Formula::And(RelationAtom("Directed", {"x1", "m"}),
                        RelationAtom("ActedIn", {"x2", "m"})));
  std::string vars[] = {"x1", "x2"};
  auto holds = [&](int a, int b) {
    Vertex tuple[] = {encoded.VertexOf(a), encoded.VertexOf(b)};
    return EvaluateQuery(encoded.graph, query, vars, tuple);
  };
  EXPECT_TRUE(holds(0, 1));   // 0 directed movie 3, 1 acted in 3
  EXPECT_TRUE(holds(0, 2));   // movie 3 or 4
  EXPECT_TRUE(holds(1, 1));   // 1 directed 5 and acted in 5
  EXPECT_FALSE(holds(1, 0));  // 0 never acted
  EXPECT_FALSE(holds(2, 1));  // 2 directed nothing
}

TEST(Encoding, LearnDefinableConceptOverEncodedDb) {
  // Learn "x is a director" from labelled element vertices; the concept is
  // rank-2-definable over the encoding (∃t ∃p pattern), so the type ERM
  // must reach zero training error at rank 2.
  Database db = MakeMovieDb();
  EncodedDatabase encoded = EncodeDatabase(db);
  TrainingSet examples;
  for (int e = 0; e < db.domain_size(); ++e) {
    bool is_director = false;
    for (const std::vector<int>& t : db.Tuples("Directed")) {
      if (t[0] == e) is_director = true;
    }
    examples.push_back({{encoded.VertexOf(e)}, is_director});
  }
  ErmResult result = TypeMajorityErm(encoded.graph, examples, {}, {2, 4});
  EXPECT_EQ(result.training_error, 0.0);
}

TEST(Encoding, ElementsOfSameTupleAtDistanceFour) {
  Database db = MakeMovieDb();
  EncodedDatabase encoded = EncodeDatabase(db);
  EXPECT_EQ(Distance(encoded.graph, encoded.VertexOf(0),
                     encoded.VertexOf(3)),
            4);  // 0 directed 3
}

}  // namespace
}  // namespace folearn
