#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "util/rng.h"

namespace folearn {
namespace {

TEST(Vocabulary, AddAndFind) {
  Vocabulary vocab;
  ColorId red = vocab.AddColor("Red");
  ColorId blue = vocab.AddColor("Blue");
  EXPECT_EQ(red, 0);
  EXPECT_EQ(blue, 1);
  EXPECT_EQ(vocab.FindColor("Red"), red);
  EXPECT_FALSE(vocab.FindColor("Green").has_value());
  EXPECT_EQ(vocab.Name(blue), "Blue");
}

TEST(Vocabulary, PrefixDetectsExpansions) {
  Vocabulary small;
  small.AddColor("A");
  Vocabulary big;
  big.AddColor("A");
  big.AddColor("B");
  EXPECT_TRUE(small.IsPrefixOf(big));
  EXPECT_FALSE(big.IsPrefixOf(small));
  EXPECT_TRUE(small.IsPrefixOf(small));
}

TEST(Graph, EdgesAreSymmetricIrreflexiveIdempotent) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);  // idempotent
  EXPECT_EQ(g.EdgeCount(), 1);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_TRUE(ValidateGraph(g));
}

TEST(Graph, RemoveAndIsolate) {
  Graph g = MakeStar(4);
  EXPECT_EQ(g.Degree(0), 4);
  g.RemoveEdge(0, 1);
  EXPECT_EQ(g.Degree(0), 3);
  g.IsolateVertex(0);
  EXPECT_EQ(g.Degree(0), 0);
  EXPECT_EQ(g.EdgeCount(), 0);
  EXPECT_TRUE(ValidateGraph(g));
}

TEST(Graph, ColorsTrackMembership) {
  Graph g(3);
  ColorId c = g.AddColor("Mark");
  g.SetColor(1, c);
  EXPECT_FALSE(g.HasColor(0, c));
  EXPECT_TRUE(g.HasColor(1, c));
  EXPECT_EQ(g.VerticesWithColor(c), std::vector<Vertex>{1});
  g.SetColor(1, c, false);
  EXPECT_TRUE(g.VerticesWithColor(c).empty());
}

TEST(Graph, AddVertexExtendsColorSets) {
  Graph g(2);
  ColorId c = g.AddColor("C");
  Vertex v = g.AddVertex();
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(g.HasColor(v, c));
  g.SetColor(v, c);
  EXPECT_TRUE(g.HasColor(v, c));
}

TEST(BfsDistances, PathDistances) {
  Graph g = MakePath(5);
  Vertex source[] = {0};
  std::vector<int> dist = BfsDistances(g, source);
  EXPECT_EQ(dist, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(BfsDistances, RadiusCapTruncates) {
  Graph g = MakePath(5);
  Vertex source[] = {0};
  std::vector<int> dist = BfsDistances(g, source, 2);
  EXPECT_EQ(dist, (std::vector<int>{0, 1, 2, kUnreachable, kUnreachable}));
}

TEST(BfsDistances, MultiSource) {
  Graph g = MakePath(5);
  Vertex sources[] = {0, 4};
  std::vector<int> dist = BfsDistances(g, sources);
  EXPECT_EQ(dist, (std::vector<int>{0, 1, 2, 1, 0}));
}

TEST(TupleDistance, MinOverPairs) {
  Graph g = MakePath(6);
  Vertex us[] = {0, 1};
  Vertex vs[] = {4, 5};
  EXPECT_EQ(TupleDistance(g, us, vs), 3);
}

TEST(Distance, DisconnectedIsUnreachable) {
  Graph g(3);
  g.AddEdge(0, 1);
  EXPECT_EQ(Distance(g, 0, 2), kUnreachable);
}

TEST(Ball, MatchesPaperDefinition) {
  Graph g = MakeCycle(6);
  Vertex center[] = {0};
  EXPECT_EQ(Ball(g, center, 0), (std::vector<Vertex>{0}));
  EXPECT_EQ(Ball(g, center, 1), (std::vector<Vertex>{0, 1, 5}));
  EXPECT_EQ(Ball(g, center, 2), (std::vector<Vertex>{0, 1, 2, 4, 5}));
  EXPECT_EQ(Ball(g, center, 3).size(), 6u);
}

TEST(InducedSubgraph, KeepsEdgesAndColors) {
  Graph g = MakeCycle(5);
  ColorId c = g.AddColor("C");
  g.SetColor(2, c);
  Vertex keep[] = {1, 2, 3};
  InducedSubgraph sub = BuildInducedSubgraph(g, keep);
  EXPECT_EQ(sub.graph.order(), 3);
  EXPECT_EQ(sub.graph.EdgeCount(), 2);  // 1-2, 2-3; the 4-0 chord is cut
  EXPECT_TRUE(sub.graph.HasColor(sub.from_original[2], *sub.graph.FindColor("C")));
  EXPECT_EQ(sub.to_original[sub.from_original[3]], 3);
  EXPECT_EQ(sub.from_original[0], kNoVertex);
  EXPECT_TRUE(ValidateGraph(sub.graph));
}

TEST(InducedSubgraph, MapTupleRoundTrips) {
  Graph g = MakePath(6);
  Vertex keep[] = {2, 3, 4};
  InducedSubgraph sub = BuildInducedSubgraph(g, keep);
  Vertex tuple[] = {3, 2};
  std::vector<Vertex> mapped = sub.MapTuple(tuple);
  EXPECT_EQ(sub.to_original[mapped[0]], 3);
  EXPECT_EQ(sub.to_original[mapped[1]], 2);
}

TEST(NeighborhoodGraph, BallAroundTuple) {
  Graph g = MakePath(10);
  Vertex tuple[] = {2, 7};
  NeighborhoodGraph nbhd = BuildNeighborhoodGraph(g, tuple, 1);
  // Ball = {1,2,3} ∪ {6,7,8}.
  EXPECT_EQ(nbhd.induced.graph.order(), 6);
  EXPECT_EQ(nbhd.induced.graph.EdgeCount(), 4);
  EXPECT_EQ(nbhd.tuple.size(), 2u);
}

TEST(DisjointCopies, StructurePreserved) {
  Graph g = MakeCycle(4);
  ColorId c = g.AddColor("C");
  g.SetColor(1, c);
  Graph copies = DisjointCopies(g, 3);
  EXPECT_EQ(copies.order(), 12);
  EXPECT_EQ(copies.EdgeCount(), 12);
  EXPECT_TRUE(copies.HasEdge(4, 5));
  EXPECT_FALSE(copies.HasEdge(3, 4));
  EXPECT_TRUE(copies.HasColor(9, *copies.FindColor("C")));
  auto [components, count] = ConnectedComponents(copies);
  EXPECT_EQ(count, 3);
}

TEST(DisjointUnion, OffsetsSecondGraph) {
  Graph a = MakePath(3);
  Graph b = MakePath(2);
  Graph u = DisjointUnion(a, b);
  EXPECT_EQ(u.order(), 5);
  EXPECT_TRUE(u.HasEdge(3, 4));
  EXPECT_FALSE(u.HasEdge(2, 3));
}

TEST(ConnectedComponents, CountsComponents) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(3, 4);
  auto [components, count] = ConnectedComponents(g);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(components[0], components[1]);
  EXPECT_NE(components[1], components[2]);
}

// --- Generators --------------------------------------------------------------

TEST(Generators, PathCycleGridCounts) {
  EXPECT_EQ(MakePath(10).EdgeCount(), 9);
  EXPECT_EQ(MakeCycle(10).EdgeCount(), 10);
  Graph grid = MakeGrid(4, 3);
  EXPECT_EQ(grid.order(), 12);
  EXPECT_EQ(grid.EdgeCount(), 3 * 3 + 4 * 2);
  EXPECT_EQ(MakeComplete(6).EdgeCount(), 15);
  EXPECT_EQ(MakeCompleteBipartite(3, 4).EdgeCount(), 12);
  EXPECT_EQ(MakeStar(7).EdgeCount(), 7);
}

TEST(Generators, CaterpillarShape) {
  Graph cat = MakeCaterpillar(3, 2);
  EXPECT_EQ(cat.order(), 9);
  EXPECT_EQ(cat.EdgeCount(), 8);  // tree
  auto [components, count] = ConnectedComponents(cat);
  EXPECT_EQ(count, 1);
}

TEST(Generators, BinaryTreeIsTree) {
  Graph tree = MakeBinaryTree(4);
  EXPECT_EQ(tree.order(), 31);
  EXPECT_EQ(tree.EdgeCount(), 30);
}

TEST(Generators, RandomTreeIsSpanningTree) {
  Rng rng(11);
  for (int n : {1, 2, 3, 10, 50}) {
    Graph tree = MakeRandomTree(n, rng);
    EXPECT_EQ(tree.order(), n);
    EXPECT_EQ(tree.EdgeCount(), n - 1);
    auto [components, count] = ConnectedComponents(tree);
    EXPECT_EQ(count, 1) << "n=" << n;
    EXPECT_TRUE(ValidateGraph(tree));
  }
}

TEST(Generators, ErdosRenyiExtremes) {
  Rng rng(5);
  EXPECT_EQ(MakeErdosRenyi(10, 0.0, rng).EdgeCount(), 0);
  EXPECT_EQ(MakeErdosRenyi(10, 1.0, rng).EdgeCount(), 45);
}

TEST(Generators, BoundedDegreeRespectsBound) {
  Rng rng(13);
  Graph g = MakeBoundedDegree(50, 3, 70, rng);
  EXPECT_LE(g.MaxDegree(), 3);
  EXPECT_TRUE(ValidateGraph(g));
}

TEST(Generators, PreferentialAttachmentConnected) {
  Rng rng(17);
  Graph g = MakePreferentialAttachment(40, 2, rng);
  auto [components, count] = ConnectedComponents(g);
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(ValidateGraph(g));
}

TEST(Generators, SubdividedCompleteShape) {
  Graph g = MakeSubdividedComplete(5);
  // 5 branch + C(5,2)=10 subdivision vertices; 2 edges per clique edge.
  EXPECT_EQ(g.order(), 15);
  EXPECT_EQ(g.EdgeCount(), 20);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(g.Degree(v), 4);
  for (Vertex v = 5; v < 15; ++v) EXPECT_EQ(g.Degree(v), 2);
  EXPECT_TRUE(ValidateGraph(g));
}

TEST(Generators, HypercubeShape) {
  Graph q3 = MakeHypercube(3);
  EXPECT_EQ(q3.order(), 8);
  EXPECT_EQ(q3.EdgeCount(), 12);
  EXPECT_EQ(q3.MaxDegree(), 3);
  auto [components, count] = ConnectedComponents(q3);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(MakeHypercube(0).order(), 1);
}

TEST(Generators, PeriodicColor) {
  Graph g = MakePath(10);
  ColorId c = AddPeriodicColor(g, "Even", 2, 0);
  EXPECT_EQ(g.VerticesWithColor(c).size(), 5u);
  EXPECT_TRUE(g.HasColor(0, c));
  EXPECT_FALSE(g.HasColor(1, c));
}

TEST(Generators, RandomColorsProbabilityExtremes) {
  Rng rng(23);
  Graph g = MakePath(20);
  AddRandomColors(g, {"Never"}, 0.0, rng);
  AddRandomColors(g, {"Always"}, 1.0, rng);
  EXPECT_TRUE(g.VerticesWithColor(*g.FindColor("Never")).empty());
  EXPECT_EQ(g.VerticesWithColor(*g.FindColor("Always")).size(), 20u);
}

// --- I/O ----------------------------------------------------------------------

TEST(GraphIo, TextRoundTrip) {
  Rng rng(31);
  Graph g = MakeRandomTree(12, rng);
  AddPeriodicColor(g, "Mod3", 3, 1);
  AddRandomColors(g, {"Noise"}, 0.4, rng);
  std::string text = ToText(g);
  std::string error;
  std::optional<Graph> parsed = FromText(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(ToText(*parsed), text);
}

TEST(GraphIo, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(FromText("edge 0 1", &error).has_value());
  EXPECT_FALSE(FromText("graph 2\nedge 0 2", &error).has_value());
  EXPECT_FALSE(FromText("graph 2\nedge 0 0", &error).has_value());
  EXPECT_FALSE(FromText("graph -1", &error).has_value());
  EXPECT_FALSE(FromText("", &error).has_value());
  EXPECT_FALSE(FromText("graph 1\nbogus 3", &error).has_value());
}

// Every parse error names the offending 1-based line and quotes enough of
// the line to find it in the input.
TEST(GraphIo, ParseErrorsCarryLineNumbers) {
  std::string error;
  EXPECT_FALSE(FromText("edge 0 1", &error).has_value());
  EXPECT_TRUE(error.starts_with("line 1: ")) << error;

  EXPECT_FALSE(FromText("graph 2\nedge 0 2", &error).has_value());
  EXPECT_TRUE(error.starts_with("line 2: ")) << error;
  EXPECT_NE(error.find("edge 0 2"), std::string::npos) << error;

  EXPECT_FALSE(FromText("graph 1\ngraph 1", &error).has_value());
  EXPECT_TRUE(error.starts_with("line 2: ")) << error;

  // Blank and comment lines still advance the counter.
  EXPECT_FALSE(FromText("# header\n\ngraph 2\n\nbogus 3", &error).has_value());
  EXPECT_TRUE(error.starts_with("line 5: ")) << error;
  EXPECT_NE(error.find("bogus"), std::string::npos) << error;

  EXPECT_FALSE(FromText("graph 2\ncolor Red two", &error).has_value());
  EXPECT_TRUE(error.starts_with("line 2: ")) << error;

  // "empty input" has no line to blame and carries no prefix.
  EXPECT_FALSE(FromText("", &error).has_value());
  EXPECT_EQ(error, "empty input");
}

TEST(GraphIo, DotOutputMentionsVerticesAndEdges) {
  Graph g = MakePath(3);
  ColorId c = g.AddColor("Red");
  g.SetColor(0, c);
  std::string dot = ToDot(g, "demo");
  EXPECT_NE(dot.find("graph demo"), std::string::npos);
  EXPECT_NE(dot.find("v0 [label=\"0:Red\"]"), std::string::npos);
  EXPECT_NE(dot.find("v0 -- v1"), std::string::npos);
}

}  // namespace
}  // namespace folearn
