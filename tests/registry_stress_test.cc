// Stress test for the sharded TypeRegistry strategy used by the parallel
// sweeps: many workers intern overlapping local types into per-worker
// shards concurrently, the shards are folded with MergeFrom in fixed
// worker order, and the merged registry must be content-identical to the
// registry a sequential scan builds. Run under TSan in CI to certify the
// shard-confinement scheme is race-free.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "graph/generators.h"
#include "types/type.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace folearn {
namespace {

constexpr int kWorkers = 8;
constexpr int kRank = 1;
constexpr int kRadius = 1;

struct Workload {
  Graph graph{0};
  std::vector<std::vector<Vertex>> tuples;

  Workload() {
    Rng rng(1234);
    graph = MakeRandomTree(30, rng);
    AddRandomColors(graph, {"Red", "Blue"}, 0.3, rng);
    // Every pair, so each worker's slice shares many types with the
    // others — the merge has to dedup aggressively.
    for (Vertex u = 0; u < graph.order(); ++u) {
      for (Vertex v = 0; v < graph.order(); v += 3) {
        tuples.push_back({u, v});
      }
    }
  }
};

// Two registries have the same content iff merging either into (a copy
// of) the other adds nothing.
void ExpectSameContent(const TypeRegistry& a, const TypeRegistry& b) {
  ASSERT_EQ(a.size(), b.size());
  TypeRegistry a_copy = a;
  a_copy.MergeFrom(b);
  EXPECT_EQ(a_copy.size(), a.size());
  TypeRegistry b_copy = b;
  b_copy.MergeFrom(a);
  EXPECT_EQ(b_copy.size(), b.size());
}

TEST(RegistryStress, ConcurrentShardsMergeToSequentialRegistry) {
  Workload w;

  // Sequential reference: one registry, tuples in order.
  TypeRegistry sequential(w.graph.vocabulary());
  std::vector<TypeId> sequential_ids;
  {
    BallCache cache(w.graph);
    for (const auto& tuple : w.tuples) {
      sequential_ids.push_back(ComputeLocalType(w.graph, tuple, kRank,
                                                kRadius, &sequential, &cache));
    }
  }

  // Parallel: worker i interns the tuples congruent to i mod kWorkers
  // into its own shard, all workers running at once.
  std::vector<std::unique_ptr<TypeRegistry>> shards;
  std::vector<std::unique_ptr<BallCache>> caches;
  for (int i = 0; i < kWorkers; ++i) {
    shards.push_back(std::make_unique<TypeRegistry>(w.graph.vocabulary()));
    caches.push_back(std::make_unique<BallCache>(w.graph));
  }
  std::vector<std::vector<TypeId>> shard_ids(kWorkers);
  ThreadPool::Global().RunParallel(kWorkers, [&](int worker) {
    for (size_t i = worker; i < w.tuples.size(); i += kWorkers) {
      shard_ids[worker].push_back(
          ComputeLocalType(w.graph, w.tuples[i], kRank, kRadius,
                           shards[worker].get(), caches[worker].get()));
    }
  });

  // Deterministic fold, worker order.
  TypeRegistry merged(w.graph.vocabulary());
  std::vector<std::vector<TypeId>> translations;
  for (int i = 0; i < kWorkers; ++i) {
    translations.push_back(merged.MergeFrom(*shards[i]));
  }

  ExpectSameContent(merged, sequential);

  // The translated per-tuple ids must induce the same partition of the
  // tuples as the sequential ids: equal sequential type ⟺ equal merged
  // type (the numbering may differ, the classification may not).
  std::map<TypeId, TypeId> seq_to_merged;
  std::map<TypeId, TypeId> merged_to_seq;
  for (size_t i = 0; i < w.tuples.size(); ++i) {
    const int worker = static_cast<int>(i % kWorkers);
    const size_t slot = i / kWorkers;
    const TypeId shard_id = shard_ids[worker][slot];
    ASSERT_GE(shard_id, 0);
    ASSERT_LT(static_cast<size_t>(shard_id), translations[worker].size());
    const TypeId merged_id = translations[worker][shard_id];
    const TypeId seq_id = sequential_ids[i];
    auto [it_fwd, fwd_new] = seq_to_merged.emplace(seq_id, merged_id);
    EXPECT_EQ(it_fwd->second, merged_id) << "tuple " << i;
    auto [it_bwd, bwd_new] = merged_to_seq.emplace(merged_id, seq_id);
    EXPECT_EQ(it_bwd->second, seq_id) << "tuple " << i;
  }
  EXPECT_EQ(seq_to_merged.size(), merged_to_seq.size());
}

TEST(RegistryStress, MergeFromIsIdempotent) {
  Workload w;
  TypeRegistry shard(w.graph.vocabulary());
  for (size_t i = 0; i < w.tuples.size(); i += 5) {
    ComputeLocalType(w.graph, w.tuples[i], kRank, kRadius, &shard);
  }
  TypeRegistry merged(w.graph.vocabulary());
  std::vector<TypeId> first = merged.MergeFrom(shard);
  const int64_t size_after_first = merged.size();
  EXPECT_EQ(size_after_first, shard.size());
  std::vector<TypeId> second = merged.MergeFrom(shard);
  EXPECT_EQ(merged.size(), size_after_first);
  EXPECT_EQ(first, second);
}

TEST(RegistryStress, MergeOrderDoesNotChangeContent) {
  Workload w;
  TypeRegistry even(w.graph.vocabulary());
  TypeRegistry odd(w.graph.vocabulary());
  for (size_t i = 0; i < w.tuples.size(); ++i) {
    ComputeLocalType(w.graph, w.tuples[i], kRank, kRadius,
                     (i % 2 == 0) ? &even : &odd);
  }
  TypeRegistry ab(w.graph.vocabulary());
  ab.MergeFrom(even);
  ab.MergeFrom(odd);
  TypeRegistry ba(w.graph.vocabulary());
  ba.MergeFrom(odd);
  ba.MergeFrom(even);
  ExpectSameContent(ab, ba);
}

// Repeated concurrent rounds against one long-lived set of shards — the
// pattern the ERM sweeps follow across governor restarts. Exercises the
// pool's job reuse; TSan certifies no cross-worker interference.
TEST(RegistryStress, RepeatedRoundsStayConsistent) {
  Workload w;
  std::vector<std::unique_ptr<TypeRegistry>> shards;
  for (int i = 0; i < kWorkers; ++i) {
    shards.push_back(std::make_unique<TypeRegistry>(w.graph.vocabulary()));
  }
  for (int round = 0; round < 4; ++round) {
    ThreadPool::Global().RunParallel(kWorkers, [&](int worker) {
      for (size_t i = worker; i < w.tuples.size(); i += kWorkers) {
        ComputeLocalType(w.graph, w.tuples[i], kRank, kRadius,
                         shards[worker].get());
      }
    });
  }
  // Every round re-interns the same types, so shard sizes are stable and
  // the merged registry matches a fresh sequential pass.
  TypeRegistry merged(w.graph.vocabulary());
  for (int i = 0; i < kWorkers; ++i) merged.MergeFrom(*shards[i]);
  TypeRegistry sequential(w.graph.vocabulary());
  for (const auto& tuple : w.tuples) {
    ComputeLocalType(w.graph, tuple, kRank, kRadius, &sequential);
  }
  ExpectSameContent(merged, sequential);
}

}  // namespace
}  // namespace folearn
