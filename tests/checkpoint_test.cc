#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "learn/dataset.h"
#include "learn/erm.h"
#include "learn/search_state.h"
#include "util/checkpoint.h"
#include "util/governor.h"
#include "util/rng.h"
#include "util/status.h"

namespace folearn {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Status model.

TEST(Status, OkAndErrorBasics) {
  Status ok = OkStatus();
  EXPECT_TRUE(ok.ok());
  Status bad = DataLossError("boom");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kDataLoss);
  EXPECT_EQ(bad.message(), "boom");
}

TEST(Status, ExitCodesFollowSysexits) {
  EXPECT_EQ(StatusExitCode(OkStatus()), 0);
  EXPECT_EQ(StatusExitCode(NotFoundError("x")), 66);
  EXPECT_EQ(StatusExitCode(DataLossError("x")), 65);
  EXPECT_EQ(StatusExitCode(InvalidArgumentError("x")), 65);
}

TEST(StatusOr, HoldsValueOrStatus) {
  StatusOr<int> value(7);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 7);
  StatusOr<int> error(NotFoundError("missing"));
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// FNV-1a and the checkpoint envelope.

TEST(Fnv1a64, KnownAnswers) {
  // Standard FNV-1a 64 test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
  // Chaining == concatenation.
  EXPECT_EQ(Fnv1a64("bar", Fnv1a64("foo")), Fnv1a64("foobar"));
}

TEST(CheckpointEnvelope, RoundTripsPayload) {
  const std::string path = TempPath("envelope.ckpt");
  const std::string payload = "line one\nline two\n\nbinary-ish \x01\x02";
  ASSERT_TRUE(WriteCheckpointFile(path, payload).ok());
  StatusOr<std::string> read = ReadCheckpointFile(path);
  ASSERT_TRUE(read.ok()) << read.status().message();
  EXPECT_EQ(*read, payload);
}

TEST(CheckpointEnvelope, EmptyPayloadRoundTrips) {
  const std::string path = TempPath("empty.ckpt");
  ASSERT_TRUE(WriteCheckpointFile(path, "").ok());
  StatusOr<std::string> read = ReadCheckpointFile(path);
  ASSERT_TRUE(read.ok()) << read.status().message();
  EXPECT_EQ(*read, "");
}

TEST(CheckpointEnvelope, MissingFileIsNotFound) {
  StatusOr<std::string> read = ReadCheckpointFile(TempPath("nonexistent"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(StatusExitCode(read.status()), 66);
}

TEST(CheckpointEnvelope, EveryTruncationIsRejected) {
  const std::string path = TempPath("trunc.ckpt");
  ASSERT_TRUE(WriteCheckpointFile(path, "some payload bytes").ok());
  StatusOr<std::string> full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  for (size_t len = 0; len < full->size(); ++len) {
    ASSERT_TRUE(WriteFileAtomic(path, full->substr(0, len)).ok());
    StatusOr<std::string> read = ReadCheckpointFile(path);
    EXPECT_FALSE(read.ok()) << "truncation to " << len << " bytes accepted";
    if (!read.ok()) EXPECT_EQ(StatusExitCode(read.status()), 65);
  }
}

TEST(CheckpointEnvelope, EveryBitFlipIsRejected) {
  const std::string path = TempPath("flip.ckpt");
  ASSERT_TRUE(WriteCheckpointFile(path, "some payload bytes").ok());
  StatusOr<std::string> full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  for (size_t i = 0; i < full->size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = *full;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      ASSERT_TRUE(WriteFileAtomic(path, mutated).ok());
      StatusOr<std::string> read = ReadCheckpointFile(path);
      EXPECT_FALSE(read.ok())
          << "bit " << bit << " of byte " << i << " flip accepted";
    }
  }
}

TEST(CheckpointEnvelope, VersionSkewNamesBothVersions) {
  const std::string path = TempPath("skew.ckpt");
  ASSERT_TRUE(WriteCheckpointFile(path, "payload").ok());
  StatusOr<std::string> full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  std::string skewed = *full;
  size_t pos = skewed.find("v1");
  ASSERT_NE(pos, std::string::npos);
  skewed.replace(pos, 2, "v7");
  ASSERT_TRUE(WriteFileAtomic(path, skewed).ok());
  StatusOr<std::string> read = ReadCheckpointFile(path);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find("v7"), std::string::npos);
  EXPECT_NE(read.status().message().find("v1"), std::string::npos);
}

TEST(WriteFileAtomic, FailureLeavesOriginalUntouched) {
  const std::string path = TempPath("no-such-dir") + "/file.txt";
  Status status = WriteFileAtomic(path, "content");
  EXPECT_FALSE(status.ok());
}

TEST(WriteFileAtomic, ReplacesExistingFileAtomically) {
  const std::string path = TempPath("replace.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "old").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "new").ok());
  StatusOr<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "new");
}

// ---------------------------------------------------------------------------
// Frontier serialisation.

SearchFrontier MakeFrontier() {
  SearchFrontier f;
  f.learner = "brute";
  f.fingerprint = 0x0123456789abcdefull;
  f.cursor = 192;
  f.best_index = 4;
  f.best_error = 0.2333333333333333;
  f.tried = 192;
  f.governor_work = 7808;
  f.governor_checkpoints = 383;
  return f;
}

TEST(SearchFrontier, RoundTripsExactly) {
  SearchFrontier f = MakeFrontier();
  StatusOr<SearchFrontier> parsed = ParseFrontier(SerializeFrontier(f));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->learner, f.learner);
  EXPECT_EQ(parsed->fingerprint, f.fingerprint);
  EXPECT_EQ(parsed->cursor, f.cursor);
  EXPECT_EQ(parsed->best_index, f.best_index);
  // Bit-exact, not approximately equal: the resumed comparison must
  // reproduce the uninterrupted one.
  EXPECT_EQ(parsed->best_error, f.best_error);
  EXPECT_EQ(parsed->tried, f.tried);
  EXPECT_EQ(parsed->governor_work, f.governor_work);
  EXPECT_EQ(parsed->governor_checkpoints, f.governor_checkpoints);
}

TEST(SearchFrontier, InfinityAndNoWinnerRoundTrip) {
  SearchFrontier f;
  f.learner = "nd";
  StatusOr<SearchFrontier> parsed = ParseFrontier(SerializeFrontier(f));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->best_index, -1);
  EXPECT_TRUE(std::isinf(parsed->best_error));
  EXPECT_EQ(parsed->cursor, 0);
}

TEST(SearchFrontier, FileRoundTripThroughEnvelope) {
  const std::string path = TempPath("frontier.ckpt");
  SearchFrontier f = MakeFrontier();
  ASSERT_TRUE(SaveFrontier(path, f).ok());
  StatusOr<SearchFrontier> loaded = LoadFrontier(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->cursor, f.cursor);
  EXPECT_EQ(loaded->best_error, f.best_error);
}

TEST(SearchFrontier, ParserRejectsMalformedPayloads) {
  const std::string valid = SerializeFrontier(MakeFrontier());
  EXPECT_TRUE(ParseFrontier(valid).ok());
  // Dropping any single line breaks the fixed field order.
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < valid.size()) {
    size_t end = valid.find('\n', start);
    lines.push_back(valid.substr(start, end - start));
    start = end + 1;
  }
  ASSERT_EQ(lines.size(), 8u);
  for (size_t drop = 0; drop < lines.size(); ++drop) {
    std::string mutated;
    for (size_t i = 0; i < lines.size(); ++i) {
      if (i != drop) mutated += lines[i] + "\n";
    }
    EXPECT_FALSE(ParseFrontier(mutated).ok()) << "dropped line " << drop;
  }
  EXPECT_FALSE(ParseFrontier("").ok());
  EXPECT_FALSE(ParseFrontier(valid + "extra junk\n").ok());
  EXPECT_FALSE(ParseFrontier("cursor -5\n").ok());
}

TEST(SearchFrontier, ParserRejectsInconsistentWinner) {
  SearchFrontier f = MakeFrontier();
  f.best_index = f.cursor;  // winner must lie strictly below the cursor
  EXPECT_FALSE(ParseFrontier(SerializeFrontier(f)).ok());
}

TEST(SearchFrontier, CompatibilityChecksLearnerAndFingerprint) {
  SearchFrontier f = MakeFrontier();
  EXPECT_TRUE(CheckFrontierCompatible(f, "brute", f.fingerprint).ok());
  Status wrong_learner = CheckFrontierCompatible(f, "nd", f.fingerprint);
  EXPECT_FALSE(wrong_learner.ok());
  EXPECT_EQ(StatusExitCode(wrong_learner), 65);
  Status wrong_instance = CheckFrontierCompatible(f, "brute", 999);
  EXPECT_FALSE(wrong_instance.ok());
  EXPECT_EQ(StatusExitCode(wrong_instance), 65);
}

// ---------------------------------------------------------------------------
// Governor ledger restore.

TEST(ResourceGovernor, RestoreLedgerPrimesAllowance) {
  ResourceGovernor governor(GovernorLimits{kNoLimit, 100});
  governor.RestoreLedger(40, 10);
  EXPECT_EQ(governor.work_used(), 40);
  EXPECT_EQ(governor.DeterministicAllowance(), 60);
  EXPECT_EQ(governor.status(), RunStatus::kComplete);
}

TEST(ResourceGovernor, RestoredLedgerTripsAtTheOriginalCutPoint) {
  // A fresh governor charged 40 + 61 trips exactly like a restored one.
  ResourceGovernor fresh(GovernorLimits{kNoLimit, 100});
  fresh.CheckpointBatch(40);
  ResourceGovernor restored(GovernorLimits{kNoLimit, 100});
  restored.RestoreLedger(40, 40);
  EXPECT_EQ(fresh.DeterministicAllowance(),
            restored.DeterministicAllowance());
  fresh.CheckpointBatch(61);
  restored.CheckpointBatch(61);
  EXPECT_EQ(fresh.status(), restored.status());
  EXPECT_EQ(fresh.work_used(), restored.work_used());
  EXPECT_TRUE(IsInterrupted(restored.status()));
}

// ---------------------------------------------------------------------------
// RunResumableScan: interrupted + resumed == uninterrupted, bit for bit.

// Deterministic synthetic errors; index 13 is the argmin (0.01).
std::pair<double, bool> SyntheticEval(int64_t index, int /*worker*/) {
  double error = 0.5 + 0.001 * ((index * 7919) % 97);
  if (index == 13) error = 0.01;
  return {error, false};
}

TEST(RunResumableScan, ResumeReproducesUninterruptedScan) {
  ScanSpec ref_spec;
  ref_spec.n_items = 100;
  ref_spec.early_stop = false;
  ScanOutcome reference = RunResumableScan(ref_spec, SyntheticEval);
  EXPECT_EQ(reference.winner, 13);
  EXPECT_EQ(reference.tried, 100);

  for (int threads : {1, 2, 8}) {
    // Interrupted leg: an injected trip cuts the scan mid-range; the
    // checkpointer has saved the frontier of the last complete segment.
    const std::string path =
        TempPath("scan" + std::to_string(threads) + ".ckpt");
    FaultInjector injector(41);
    ResourceGovernor cut_governor(GovernorLimits{}, nullptr, &injector);
    SearchCheckpointer checkpointer(path);
    ScanSpec cut_spec = ref_spec;
    cut_spec.threads = threads;
    cut_spec.stride = 16;
    cut_spec.governor = &cut_governor;
    cut_spec.checkpointer = &checkpointer;
    cut_spec.learner = "test";
    cut_spec.fingerprint = 0xfeed;
    ScanOutcome cut = RunResumableScan(cut_spec, SyntheticEval);
    EXPECT_TRUE(IsInterrupted(cut_governor.status()));
    EXPECT_LT(cut.tried, 100);
    ASSERT_GT(checkpointer.saves(), 0);

    StatusOr<SearchFrontier> frontier = LoadFrontier(path);
    ASSERT_TRUE(frontier.ok()) << frontier.status().message();
    ASSERT_TRUE(
        CheckFrontierCompatible(*frontier, "test", 0xfeed).ok());
    EXPECT_LT(frontier->cursor, 100);

    // Resumed leg (ungoverned, like the original reference run).
    ScanSpec resume_spec = ref_spec;
    resume_spec.threads = threads;
    resume_spec.stride = 16;
    resume_spec.resume = &*frontier;
    resume_spec.learner = "test";
    resume_spec.fingerprint = 0xfeed;
    ScanOutcome resumed = RunResumableScan(resume_spec, SyntheticEval);
    EXPECT_EQ(resumed.winner, reference.winner) << "threads " << threads;
    EXPECT_EQ(resumed.best_error, reference.best_error);
    EXPECT_EQ(resumed.tried, reference.tried);
  }
}

TEST(RunResumableScan, GovernedResumeLandsOnTheSameCutPoint) {
  // Budget trips must land identically whether or not the scan was
  // interrupted and resumed in between.
  ScanSpec ref_spec;
  ref_spec.n_items = 100;
  ref_spec.unit = 3;
  ref_spec.early_stop = false;
  ResourceGovernor ref_governor(GovernorLimits{kNoLimit, 120});
  ref_spec.governor = &ref_governor;
  ScanOutcome reference = RunResumableScan(ref_spec, SyntheticEval);
  EXPECT_TRUE(IsInterrupted(ref_governor.status()));

  // Interrupted leg: same budget, but an injector kills it earlier; the
  // frontier records the partial ledger.
  const std::string path = TempPath("governed.ckpt");
  FaultInjector injector(50);
  ResourceGovernor cut_governor(GovernorLimits{kNoLimit, 120}, nullptr, &injector);
  SearchCheckpointer checkpointer(path);
  ScanSpec cut_spec = ref_spec;
  cut_spec.governor = &cut_governor;
  cut_spec.checkpointer = &checkpointer;
  cut_spec.stride = 8;
  cut_spec.learner = "test";
  cut_spec.fingerprint = 1;
  RunResumableScan(cut_spec, SyntheticEval);
  ASSERT_GT(checkpointer.saves(), 0);

  StatusOr<SearchFrontier> frontier = LoadFrontier(path);
  ASSERT_TRUE(frontier.ok()) << frontier.status().message();
  EXPECT_GT(frontier->governor_work, 0);

  ResourceGovernor resumed_governor(GovernorLimits{kNoLimit, 120});
  ScanSpec resume_spec = ref_spec;
  resume_spec.governor = &resumed_governor;
  resume_spec.stride = 8;
  resume_spec.resume = &*frontier;
  resume_spec.learner = "test";
  resume_spec.fingerprint = 1;
  ScanOutcome resumed = RunResumableScan(resume_spec, SyntheticEval);
  EXPECT_EQ(resumed.winner, reference.winner);
  EXPECT_EQ(resumed.tried, reference.tried);
  EXPECT_EQ(resumed_governor.work_used(), ref_governor.work_used());
  EXPECT_EQ(resumed_governor.status(), ref_governor.status());
}

TEST(SearchCheckpointer, FailedSaveDisablesFurtherSaves) {
  SearchCheckpointer checkpointer(TempPath("no-such-dir") + "/x.ckpt");
  EXPECT_TRUE(checkpointer.Due());
  checkpointer.Save(MakeFrontier());  // warns once, disables
  EXPECT_FALSE(checkpointer.Due());
  EXPECT_EQ(checkpointer.saves(), 0);
}

// ---------------------------------------------------------------------------
// End-to-end through a learner (library level, single process).

TEST(BruteForceErm, CheckpointedRunMatchesPlainRun) {
  Rng rng(23);
  Graph g = MakeRandomTree(14, rng);
  AddRandomColors(g, {"Red"}, 0.4, rng);
  // Labels no rank-1 hypothesis fits exactly: periodic by vertex id.
  TrainingSet examples;
  for (Vertex v = 0; v < g.order(); ++v) {
    examples.push_back({{v}, (v % 5) < 2});
  }
  ErmOptions plain;
  plain.rank = 1;
  plain.radius = 1;
  ErmResult reference = BruteForceErm(g, examples, 2, plain);

  // Interrupted leg: injector cuts the scan; checkpoint lands on disk.
  const std::string path = TempPath("erm.ckpt");
  {
    FaultInjector injector(400);
    ResourceGovernor governor(GovernorLimits{}, nullptr, &injector);
    SearchCheckpointer checkpointer(path);
    ErmOptions cut = plain;
    cut.governor = &governor;
    cut.scan.checkpointer = &checkpointer;
    cut.scan.fingerprint = 42;
    BruteForceErm(g, examples, 2, cut);
    ASSERT_GT(checkpointer.saves(), 0);
  }

  StatusOr<SearchFrontier> frontier = LoadFrontier(path);
  ASSERT_TRUE(frontier.ok()) << frontier.status().message();
  for (int threads : {1, 2, 8}) {
    ErmOptions resumed = plain;
    resumed.threads = threads;
    resumed.scan.resume = &*frontier;
    resumed.scan.fingerprint = 42;
    ErmResult result = BruteForceErm(g, examples, 2, resumed);
    EXPECT_EQ(result.training_error, reference.training_error);
    EXPECT_EQ(result.parameter_tuples_tried,
              reference.parameter_tuples_tried);
    EXPECT_EQ(result.hypothesis.ToExplicit().parameters,
              reference.hypothesis.ToExplicit().parameters);
  }
}

// ---------------------------------------------------------------------------
// Bounded BallCache.

TEST(BallCache, BudgetEvictsButNeverChangesResults) {
  Rng rng(7);
  Graph g = MakeRandomTree(60, rng);
  BallCache unbounded(g);
  BallCache bounded(g, /*max_bytes=*/2048);
  for (int round = 0; round < 3; ++round) {
    for (Vertex v = 0; v < g.order(); ++v) {
      // Spans are only valid until the next call on the same cache; copy
      // the first before querying the second.
      const std::span<const Vertex> want_span = unbounded.VertexBall(v, 2);
      const std::vector<Vertex> want(want_span.begin(), want_span.end());
      const std::span<const Vertex> got_span = bounded.VertexBall(v, 2);
      const std::vector<Vertex> got(got_span.begin(), got_span.end());
      ASSERT_EQ(got, want) << "vertex " << v;
      // The byte budget is a hard invariant after every call, not a
      // payload-only approximation.
      ASSERT_LE(bounded.bytes(), bounded.max_bytes());
    }
  }
  EXPECT_GT(bounded.evictions(), 0);
  EXPECT_EQ(unbounded.evictions(), 0);
}

// Many small balls: the regime where payload-only accounting used to
// overshoot the budget by the uncounted per-entry (key/map-node/queue)
// overhead. The full footprint must stay within budget at every step.
TEST(BallCache, ManySmallBallsRespectBudget) {
  Graph g(400, Vocabulary{});  // edgeless: every radius-1 ball is {v}
  const int64_t budget = 4096;
  BallCache cache(g, budget);
  for (Vertex v = 0; v < g.order(); ++v) {
    const std::span<const Vertex> ball_span = cache.VertexBall(v, 1);
    const std::vector<Vertex> ball(ball_span.begin(), ball_span.end());
    ASSERT_EQ(ball, std::vector<Vertex>{v});
    ASSERT_LE(cache.bytes(), budget);
  }
  // 400 singleton balls cannot all fit in 4 KiB once overhead is charged.
  EXPECT_GT(cache.evictions(), 0);
  EXPECT_LT(cache.cached_balls(), g.order());
  // The cache is not degenerate either: a sensible fraction is retained.
  EXPECT_GT(cache.cached_balls(), 8);
}

TEST(BallCache, SingleEntryLargerThanBudgetServedUncached) {
  Graph g = MakeStar(40);  // hub ball holds every vertex
  BallCache unbounded(g);
  BallCache cache(g, /*max_bytes=*/1);
  const std::span<const Vertex> ball_span = cache.VertexBall(0, 1);
  const std::vector<Vertex> ball(ball_span.begin(), ball_span.end());
  const std::span<const Vertex> want = unbounded.VertexBall(0, 1);
  EXPECT_EQ(ball, std::vector<Vertex>(want.begin(), want.end()));
  // An entry that alone exceeds the budget is served from scratch space:
  // the invariant holds and nothing is retained.
  EXPECT_EQ(cache.bytes(), 0);
  EXPECT_EQ(cache.cached_balls(), 0);
  EXPECT_EQ(cache.oversize_misses(), 1);
  // TupleBall merges scratch-served balls safely (consumed immediately).
  std::vector<Vertex> tuple = {0, 1};
  EXPECT_EQ(cache.TupleBall(tuple, 1), unbounded.TupleBall(tuple, 1));
}

}  // namespace
}  // namespace folearn
