#include <gtest/gtest.h>

#include <map>
#include <set>

#include "fo/enumerate.h"
#include "fo/printer.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "mc/evaluator.h"
#include "types/hintikka.h"
#include "types/type.h"
#include "util/rng.h"

namespace folearn {
namespace {

TEST(AtomicType, EncodesColorsEqualityAdjacency) {
  Graph g = MakePath(4);
  ColorId red = AddPeriodicColor(g, "Red", 2, 0);
  Vertex tuple[] = {0, 1, 0};
  AtomicType atomic(g, tuple);
  EXPECT_EQ(atomic.arity(), 3);
  EXPECT_TRUE(atomic.HasColor(0, red));
  EXPECT_FALSE(atomic.HasColor(1, red));
  EXPECT_TRUE(atomic.Equal(0, 2));
  EXPECT_FALSE(atomic.Equal(0, 1));
  EXPECT_TRUE(atomic.Adjacent(0, 1));
  EXPECT_TRUE(atomic.Adjacent(1, 2));
  EXPECT_FALSE(atomic.Adjacent(0, 2));
  EXPECT_TRUE(atomic.Equal(1, 1));
  EXPECT_FALSE(atomic.Adjacent(1, 1));
}

TEST(TypeRegistry, InterningIsCanonical) {
  Graph g = MakeCycle(6);
  TypeRegistry registry(g.vocabulary());
  Vertex a[] = {0};
  Vertex b[] = {3};
  // Vertex-transitive graph: all vertices have the same rank-2 type.
  EXPECT_EQ(ComputeType(g, a, 2, &registry), ComputeType(g, b, 2, &registry));
}

TEST(Types, RankZeroIsAtomic) {
  Graph g = MakePath(4);
  AddPeriodicColor(g, "Red", 2, 0);
  TypeRegistry registry(g.vocabulary());
  Vertex a[] = {0};
  Vertex b[] = {2};
  Vertex c[] = {1};
  // 0 and 2 share the atomic type (both red); 1 differs.
  EXPECT_EQ(ComputeType(g, a, 0, &registry), ComputeType(g, b, 0, &registry));
  EXPECT_NE(ComputeType(g, a, 0, &registry), ComputeType(g, c, 0, &registry));
}

TEST(Types, RankOneSeparatesEndpointsFromMidpoints) {
  Graph g = MakePath(4);
  TypeRegistry registry(g.vocabulary());
  Vertex end[] = {0};
  Vertex other_end[] = {3};
  Vertex mid[] = {1};
  // Endpoints have one neighbour type, midpoints see both sides — but with
  // rank 1 on an uncoloured path, endpoints vs midpoints differ because
  // only midpoints have two distinct neighbours… rank 1 can count
  // neighbour *types*, not multiplicity; 0 and 3 must agree.
  EXPECT_EQ(ComputeType(g, end, 1, &registry),
            ComputeType(g, other_end, 1, &registry));
  // Rank 2 separates endpoints from midpoints (the neighbour of an endpoint
  // has a neighbour adjacent to it on one side only, etc.).
  EXPECT_NE(ComputeType(g, end, 2, &registry),
            ComputeType(g, mid, 2, &registry));
}

TEST(Types, HigherRankRefines) {
  // If rank-q types differ, rank-(q+1) types must differ as well.
  Rng rng(99);
  Graph g = MakeRandomTree(14, rng);
  AddRandomColors(g, {"Red"}, 0.5, rng);
  TypeRegistry registry(g.vocabulary());
  for (Vertex u = 0; u < g.order(); ++u) {
    for (Vertex v = u + 1; v < g.order(); ++v) {
      Vertex a[] = {u};
      Vertex b[] = {v};
      if (ComputeType(g, a, 1, &registry) !=
          ComputeType(g, b, 1, &registry)) {
        EXPECT_NE(ComputeType(g, a, 2, &registry),
                  ComputeType(g, b, 2, &registry));
      }
    }
  }
}

// The defining property of EF types: equal rank-q types ⟺ agreement on all
// rank-q formulas. We verify both directions against a syntactic slice.
TEST(Types, TypeEqualityMatchesFormulaAgreement) {
  Rng rng(7);
  Graph g = MakeRandomTree(9, rng);
  AddRandomColors(g, {"Red"}, 0.4, rng);
  TypeRegistry registry(g.vocabulary());

  EnumerationOptions options;
  options.free_variables = {"x1"};
  options.colors = {"Red"};
  options.max_quantifier_rank = 1;
  options.max_boolean_depth = 1;
  options.max_count = 3000;
  std::vector<FormulaRef> formulas = EnumerateFormulas(options);

  std::string vars[] = {"x1"};
  for (Vertex u = 0; u < g.order(); ++u) {
    for (Vertex v = u + 1; v < g.order(); ++v) {
      Vertex a[] = {u};
      Vertex b[] = {v};
      bool same_type =
          ComputeType(g, a, 1, &registry) == ComputeType(g, b, 1, &registry);
      bool agree_everywhere = true;
      for (const FormulaRef& f : formulas) {
        if (f->quantifier_rank() > 1) continue;
        Vertex ta[] = {u};
        Vertex tb[] = {v};
        if (EvaluateQuery(g, f, vars, ta) != EvaluateQuery(g, f, vars, tb)) {
          agree_everywhere = false;
          break;
        }
      }
      // Equal type ⇒ agreement on every rank-1 formula. (The converse may
      // fail for a *slice*, so we assert one direction only.)
      if (same_type) {
        EXPECT_TRUE(agree_everywhere) << "u=" << u << " v=" << v;
      }
    }
  }
}

TEST(Types, PairTypesSeeDistanceWithinRank) {
  Graph g = MakePath(7);
  TypeRegistry registry(g.vocabulary());
  Vertex close_pair[] = {1, 2};
  Vertex far_pair[] = {1, 5};
  // Adjacent pair vs distant pair differ already atomically.
  EXPECT_NE(ComputeType(g, close_pair, 0, &registry),
            ComputeType(g, far_pair, 0, &registry));
  Vertex d2[] = {1, 3};
  Vertex d3[] = {2, 5};
  // Distance 2 vs 3: atomically equal (both non-adjacent), rank 1
  // distinguishes them via a common neighbour.
  EXPECT_EQ(ComputeType(g, d2, 0, &registry),
            ComputeType(g, d3, 0, &registry));
  EXPECT_NE(ComputeType(g, d2, 1, &registry),
            ComputeType(g, d3, 1, &registry));
}

TEST(LocalTypes, ComputedInsideInducedBall) {
  Graph g = MakePath(20);
  TypeRegistry registry(g.vocabulary());
  // With radius 2, vertices ≥ 2 from both ends look identical at any rank.
  Vertex a[] = {5};
  Vertex b[] = {12};
  EXPECT_EQ(ComputeLocalType(g, a, 2, 2, &registry),
            ComputeLocalType(g, b, 2, 2, &registry));
  // An endpoint differs from an interior vertex.
  Vertex end[] = {0};
  EXPECT_NE(ComputeLocalType(g, end, 2, 2, &registry),
            ComputeLocalType(g, a, 2, 2, &registry));
}

TEST(LocalTypes, BatchMatchesSingle) {
  Rng rng(3);
  Graph g = MakeRandomTree(15, rng);
  TypeRegistry registry(g.vocabulary());
  std::vector<std::vector<Vertex>> tuples = {{0, 3}, {5, 5}, {14, 1}};
  std::vector<TypeId> batch = ComputeLocalTypes(g, tuples, 1, 2, &registry);
  for (size_t i = 0; i < tuples.size(); ++i) {
    EXPECT_EQ(batch[i],
              ComputeLocalType(g, tuples[i], 1, 2, &registry));
  }
}

// Fact 5 (Gaifman): equal (q, r(q))-local types imply equal q-types.
TEST(Fact5, LocalTypesRefineGlobalTypes) {
  Rng rng(41);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = MakeRandomTree(12, rng);
    AddRandomColors(g, {"Red"}, 0.5, rng);
    TypeRegistry registry(g.vocabulary());
    const int q = 1;
    const int r = GaifmanRadius(q);
    for (Vertex u = 0; u < g.order(); ++u) {
      for (Vertex v = u + 1; v < g.order(); ++v) {
        Vertex a[] = {u};
        Vertex b[] = {v};
        if (ComputeLocalType(g, a, q, r, &registry) ==
            ComputeLocalType(g, b, q, r, &registry)) {
          EXPECT_EQ(ComputeType(g, a, q, &registry),
                    ComputeType(g, b, q, &registry))
              << "trial=" << trial << " u=" << u << " v=" << v;
        }
      }
    }
  }
}

TEST(GaifmanRadius, ClassicalValues) {
  EXPECT_EQ(GaifmanRadius(0), 0);
  EXPECT_EQ(GaifmanRadius(1), 3);
  EXPECT_EQ(GaifmanRadius(2), 24);
  EXPECT_EQ(GaifmanRadius(3), 171);
}

// Hintikka correctness: H ⊨ φ_θ(ū) ⟺ tp_q(H, ū) = θ, across graphs.
TEST(Hintikka, DefinesItsTypeExactly) {
  Rng rng(13);
  Graph g = MakeRandomTree(8, rng);
  AddRandomColors(g, {"Red"}, 0.5, rng);
  TypeRegistry registry(g.vocabulary());

  const int q = 1;
  std::vector<TypeId> types;
  for (Vertex v = 0; v < g.order(); ++v) {
    Vertex tuple[] = {v};
    types.push_back(ComputeType(g, tuple, q, &registry));
  }
  HintikkaBuilder builder(registry);
  std::string vars[] = {"x1"};
  for (Vertex v = 0; v < g.order(); ++v) {
    FormulaRef phi = builder.Build(types[v], {"x1"});
    EXPECT_LE(phi->quantifier_rank(), q);
    for (Vertex u = 0; u < g.order(); ++u) {
      Vertex tuple[] = {u};
      EXPECT_EQ(EvaluateQuery(g, phi, vars, tuple), types[u] == types[v])
          << "u=" << u << " v=" << v;
    }
  }
}

TEST(Hintikka, WorksAcrossGraphs) {
  // A type computed on one graph is defined by its Hintikka formula on a
  // DIFFERENT graph over the same vocabulary.
  Graph path = MakePath(5);
  Graph cycle = MakeCycle(5);
  TypeRegistry registry(path.vocabulary());
  Vertex mid[] = {2};
  TypeId path_mid = ComputeType(path, mid, 1, &registry);
  FormulaRef phi = HintikkaFormula(registry, path_mid, {"x1"});
  std::string vars[] = {"x1"};
  TypeComputer cycle_types(cycle, &registry);
  for (Vertex v = 0; v < cycle.order(); ++v) {
    Vertex tuple[] = {v};
    bool same = cycle_types.Type(tuple, 1) == path_mid;
    EXPECT_EQ(EvaluateQuery(cycle, phi, vars, tuple), same) << v;
  }
}

TEST(Hintikka, PairTypes) {
  Graph g = MakePath(5);
  TypeRegistry registry(g.vocabulary());
  Vertex pair[] = {1, 3};
  TypeId theta = ComputeType(g, pair, 1, &registry);
  FormulaRef phi = HintikkaFormula(registry, theta, {"x1", "x2"});
  std::string vars[] = {"x1", "x2"};
  TypeComputer computer(g, &registry);
  for (Vertex u = 0; u < g.order(); ++u) {
    for (Vertex v = 0; v < g.order(); ++v) {
      Vertex tuple[] = {u, v};
      bool same = computer.Type(tuple, 1) == theta;
      EXPECT_EQ(EvaluateQuery(g, phi, vars, tuple), same)
          << u << "," << v;
    }
  }
}

TEST(LocalHintikka, DefinesLocalTypeOnFullGraph) {
  Graph g = MakePath(12);
  AddPeriodicColor(g, "Red", 4, 0);
  TypeRegistry registry(g.vocabulary());
  const int q = 1;
  const int r = 2;
  std::vector<TypeId> local_types;
  for (Vertex v = 0; v < g.order(); ++v) {
    Vertex tuple[] = {v};
    local_types.push_back(ComputeLocalType(g, tuple, q, r, &registry));
  }
  HintikkaBuilder builder(registry);
  std::string vars[] = {"x1"};
  for (Vertex v : {0, 3, 6}) {
    FormulaRef phi = builder.BuildLocal(local_types[v], {"x1"}, r);
    for (Vertex u = 0; u < g.order(); ++u) {
      Vertex tuple[] = {u};
      EXPECT_EQ(EvaluateQuery(g, phi, vars, tuple),
                local_types[u] == local_types[v])
          << "u=" << u << " v=" << v;
    }
  }
}

TEST(TypeComputer, CacheGrowsAndIsReused) {
  Graph g = MakeCycle(8);
  TypeRegistry registry(g.vocabulary());
  TypeComputer computer(g, &registry);
  Vertex tuple[] = {0};
  computer.Type(tuple, 2);
  int64_t after_first = computer.cache_size();
  computer.Type(tuple, 2);
  EXPECT_EQ(computer.cache_size(), after_first);
  EXPECT_GT(after_first, 0);
}

TEST(TypeRegistry, VocabularyMismatchDies) {
  Graph g = MakePath(3);
  Graph colored = MakePath(3);
  colored.AddColor("Red");
  TypeRegistry registry(g.vocabulary());
  Vertex tuple[] = {0};
  EXPECT_DEATH(ComputeType(colored, tuple, 1, &registry), "vocabulary");
}

// Types of empty tuples = sentence-level equivalence.
TEST(Types, EmptyTupleDistinguishesGraphs) {
  Graph path = MakePath(4);
  Graph cycle = MakeCycle(4);
  TypeRegistry registry(path.vocabulary());
  std::span<const Vertex> empty;
  // Rank 2 does NOT separate P4 from C4 (Duplicator survives two EF
  // rounds); rank 3 does, via "there is a degree-1 vertex".
  EXPECT_EQ(ComputeType(path, empty, 2, &registry),
            ComputeType(cycle, empty, 2, &registry));
  TypeId path_type = ComputeType(path, empty, 3, &registry);
  TypeId cycle_type = ComputeType(cycle, empty, 3, &registry);
  EXPECT_NE(path_type, cycle_type);
  // And two isomorphic graphs agree.
  Graph path2 = MakePath(4);
  EXPECT_EQ(ComputeType(path2, empty, 3, &registry), path_type);
}

}  // namespace
}  // namespace folearn
