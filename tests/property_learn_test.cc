// Property tests (TEST_P sweeps) for the learning stack: ERM optimality
// invariants, the Theorem 13 guarantee against the brute-force optimum,
// covering-lemma properties, and splitter-game budgets, across graph
// families and seeds.

#include <gtest/gtest.h>

#include "fo/parser.h"
#include "graph/algorithms.h"
#include "learn/counting_erm.h"
#include "learn/erm.h"
#include "learn/nd_learner.h"
#include "learn/sublinear.h"
#include "nd/covering.h"
#include "nd/splitter_game.h"
#include "test_helpers.h"

namespace folearn {
namespace {

struct FamilySeedParam {
  GraphFamily family;
  int seed;
};

std::string FamilySeedName(
    const ::testing::TestParamInfo<FamilySeedParam>& info) {
  return std::string(FamilyName(info.param.family)) + "_" +
         std::to_string(info.param.seed);
}

// --- ERM invariants -------------------------------------------------------------

class ErmProperty : public ::testing::TestWithParam<FamilySeedParam> {};

// Workload: noisy hidden rank-1 target on the family graph.
TrainingSet NoisyWorkload(const Graph& g, Rng& rng) {
  std::vector<std::vector<Vertex>> tuples =
      SampleTuples(g.order(), 1, 3 * g.order(), rng);
  TrainingSet examples = LabelByQuery(
      g, MustParseFormula("exists z. (E(x1, z) & Red(z))"), QueryVars(1),
      tuples);
  FlipLabels(examples, 0.1, rng);
  return examples;
}

TEST_P(ErmProperty, ReportedErrorMatchesReEvaluation) {
  Rng rng(GetParam().seed);
  Graph g = MakeFamilyGraph(GetParam().family, 20, rng);
  AddRandomColors(g, {"Red"}, 0.4, rng);
  TrainingSet examples = NoisyWorkload(g, rng);
  ErmResult result = TypeMajorityErm(g, examples, {}, {1, 2});
  EXPECT_DOUBLE_EQ(result.training_error,
                   result.hypothesis.Error(g, examples));
}

TEST_P(ErmProperty, MajorityIsOptimalAmongTypeSets) {
  // No other accept-set over the same types beats the majority vote:
  // flipping any single type's decision cannot reduce the error.
  Rng rng(GetParam().seed + 100);
  Graph g = MakeFamilyGraph(GetParam().family, 15, rng);
  AddRandomColors(g, {"Red"}, 0.4, rng);
  TrainingSet examples = NoisyWorkload(g, rng);
  ErmResult result = TypeMajorityErm(g, examples, {}, {1, 2});
  // Collect per-type counts again and verify the exchange argument.
  std::map<TypeId, std::pair<int, int>> counts;
  for (const LabeledExample& example : examples) {
    TypeId type = ComputeLocalType(g, example.tuple, 1, 2,
                                   result.hypothesis.registry.get());
    auto& entry = counts[type];
    (example.label ? entry.first : entry.second) += 1;
  }
  for (const auto& [type, count] : counts) {
    bool accepted = std::binary_search(result.hypothesis.accepted.begin(),
                                       result.hypothesis.accepted.end(),
                                       type);
    int error_if_accepted = count.second;
    int error_if_rejected = count.first;
    int chosen = accepted ? error_if_accepted : error_if_rejected;
    EXPECT_LE(chosen, accepted ? error_if_rejected : error_if_accepted)
        << "type " << type << " mis-voted";
  }
}

TEST_P(ErmProperty, BruteForceMonotoneInEll) {
  Rng rng(GetParam().seed + 200);
  Graph g = MakeFamilyGraph(GetParam().family, 10, rng);
  AddRandomColors(g, {"Red"}, 0.4, rng);
  TrainingSet examples = NoisyWorkload(g, rng);
  ErmOptions options{1, 1};
  double previous = 1.1;
  for (int ell = 0; ell <= 2; ++ell) {
    ErmResult result = BruteForceErm(g, examples, ell, options);
    EXPECT_LE(result.training_error, previous + 1e-12) << "ell=" << ell;
    previous = result.training_error;
  }
}

TEST_P(ErmProperty, ExplicitFormulaAgreesWithTypeClassifier) {
  Rng rng(GetParam().seed + 300);
  Graph g = MakeFamilyGraph(GetParam().family, 12, rng);
  AddRandomColors(g, {"Red"}, 0.4, rng);
  TrainingSet examples = NoisyWorkload(g, rng);
  ErmResult result = TypeMajorityErm(g, examples, {}, {1, 1});
  Hypothesis explicit_h = result.hypothesis.ToExplicit();
  for (Vertex v = 0; v < g.order(); ++v) {
    Vertex tuple[] = {v};
    ASSERT_EQ(explicit_h.Classify(g, tuple),
              result.hypothesis.Classify(g, tuple))
        << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, ErmProperty,
    ::testing::Values(FamilySeedParam{GraphFamily::kPath, 41},
                      FamilySeedParam{GraphFamily::kRandomTree, 42},
                      FamilySeedParam{GraphFamily::kCaterpillar, 43},
                      FamilySeedParam{GraphFamily::kGrid, 44},
                      FamilySeedParam{GraphFamily::kBoundedDegree, 45},
                      FamilySeedParam{GraphFamily::kStar, 46}),
    FamilySeedName);

// Counting ERM refines plain ERM at equal rank/radius on every family.
TEST_P(ErmProperty, CountingNeverWorseThanPlain) {
  Rng rng(GetParam().seed + 400);
  Graph g = MakeFamilyGraph(GetParam().family, 18, rng);
  AddRandomColors(g, {"Red"}, 0.4, rng);
  TrainingSet examples = NoisyWorkload(g, rng);
  ErmResult plain = TypeMajorityErm(g, examples, {}, {1, 1});
  CountingErmOptions options;
  options.rank = 1;
  options.cap = 3;
  options.radius = 1;
  CountingErmResult counting =
      CountingTypeMajorityErm(g, examples, {}, options);
  EXPECT_LE(counting.training_error, plain.training_error + 1e-12);
  EXPECT_DOUBLE_EQ(counting.training_error,
                   counting.hypothesis.Error(g, examples));
}

// The sublinear learner matches the full brute force on every family
// (parameters far from examples cannot help — the Lemma 15 locality).
TEST_P(ErmProperty, SublinearMatchesBruteForce) {
  Rng rng(GetParam().seed + 500);
  Graph g = MakeFamilyGraph(GetParam().family, 20, rng);
  AddRandomColors(g, {"Red"}, 0.4, rng);
  TrainingSet examples = NoisyWorkload(g, rng);
  ErmOptions options{1, 1};
  SublinearErmResult sub = SublinearErm(g, examples, 1, options);
  ErmResult brute = BruteForceErm(g, examples, 1, options);
  EXPECT_EQ(sub.erm.training_error, brute.training_error);
}

// --- Theorem 13 guarantee ---------------------------------------------------------

class NdLearnerProperty : public ::testing::TestWithParam<FamilySeedParam> {};

TEST_P(NdLearnerProperty, WithinEpsilonOfBruteForce) {
  Rng rng(GetParam().seed);
  Graph g = MakeFamilyGraph(GetParam().family, 24, rng);
  // Hidden 1-parameter target: within distance 1 of w*.
  Vertex w_star = static_cast<Vertex>(rng.UniformIndex(g.order()));
  Vertex source[] = {w_star};
  std::vector<int> dist = BfsDistances(g, source);
  TrainingSet examples;
  for (Vertex v = 0; v < g.order(); ++v) {
    examples.push_back({{v}, dist[v] != kUnreachable && dist[v] <= 1});
  }
  NdLearnerOptions options;
  options.rank = 1;
  options.radius = 1;
  options.epsilon = 0.25;
  auto splitter = MakeGreedyDegreeSplitter();
  options.splitter = splitter.get();
  NdLearnerResult learned = LearnNowhereDense(g, examples, options);
  ErmResult brute = BruteForceErm(g, examples, 1, {1, 1});
  EXPECT_LE(learned.erm.training_error,
            brute.training_error + options.epsilon + 1e-9);
  EXPECT_DOUBLE_EQ(learned.erm.training_error,
                   learned.erm.hypothesis.Error(g, examples));
}

INSTANTIATE_TEST_SUITE_P(
    Families, NdLearnerProperty,
    ::testing::Values(FamilySeedParam{GraphFamily::kPath, 51},
                      FamilySeedParam{GraphFamily::kRandomTree, 52},
                      FamilySeedParam{GraphFamily::kRandomTree, 53},
                      FamilySeedParam{GraphFamily::kCaterpillar, 54},
                      FamilySeedParam{GraphFamily::kGrid, 55},
                      FamilySeedParam{GraphFamily::kBoundedDegree, 56},
                      FamilySeedParam{GraphFamily::kStar, 57}),
    FamilySeedName);

// --- Covering lemma across radii ---------------------------------------------------

struct CoveringParam {
  GraphFamily family;
  int seed;
  int radius;
};

class CoveringProperty : public ::testing::TestWithParam<CoveringParam> {};

TEST_P(CoveringProperty, Lemma3PropertiesHold) {
  Rng rng(GetParam().seed);
  Graph g = MakeFamilyGraph(GetParam().family, 40, rng);
  for (int trial = 0; trial < 5; ++trial) {
    int count = 1 + static_cast<int>(rng.UniformIndex(5));
    std::vector<Vertex> centers;
    for (int i = 0; i < count; ++i) {
      centers.push_back(static_cast<Vertex>(rng.UniformIndex(g.order())));
    }
    CoveringResult covering =
        GreedyBallCovering(g, centers, GetParam().radius);
    EXPECT_TRUE(VerifyCovering(g, centers, covering, GetParam().radius))
        << "trial " << trial;
    EXPECT_LE(covering.iterations, static_cast<int>(centers.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndRadii, CoveringProperty,
    ::testing::Values(CoveringParam{GraphFamily::kPath, 61, 1},
                      CoveringParam{GraphFamily::kPath, 62, 3},
                      CoveringParam{GraphFamily::kRandomTree, 63, 2},
                      CoveringParam{GraphFamily::kGrid, 64, 2},
                      CoveringParam{GraphFamily::kBoundedDegree, 65, 1},
                      CoveringParam{GraphFamily::kCycle, 66, 2}),
    [](const ::testing::TestParamInfo<CoveringParam>& info) {
      return std::string(FamilyName(info.param.family)) + "_s" +
             std::to_string(info.param.seed) + "_r" +
             std::to_string(info.param.radius);
    });

// --- Splitter budgets ---------------------------------------------------------------

struct SplitterParam {
  GraphFamily family;
  int radius;
};

class SplitterBudgetProperty
    : public ::testing::TestWithParam<SplitterParam> {};

bool IsForestFamily(GraphFamily family) {
  return family == GraphFamily::kPath ||
         family == GraphFamily::kRandomTree ||
         family == GraphFamily::kCaterpillar ||
         family == GraphFamily::kStar;
}

TEST_P(SplitterBudgetProperty, NowhereDenseFamiliesFinishWithinBudget) {
  Rng rng(71);
  Graph g = MakeFamilyGraph(GetParam().family, 60, rng);
  auto splitter = IsForestFamily(GetParam().family)
                      ? MakeTreeSplitter()
                      : MakeGreedyDegreeSplitter();
  auto connector = MakeGreedyBallConnector();
  Rng connector_rng(72);
  auto random_connector = MakeRandomConnector(connector_rng);
  const int budget = 3 * GetParam().radius + 8;
  for (ConnectorStrategy* c :
       {connector.get(), random_connector.get()}) {
    SplitterGameResult result =
        PlaySplitterGame(g, GetParam().radius, budget, *splitter, *c);
    EXPECT_TRUE(result.splitter_won)
        << FamilyName(GetParam().family) << " r=" << GetParam().radius
        << " vs " << c->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndRadii, SplitterBudgetProperty,
    ::testing::Values(SplitterParam{GraphFamily::kPath, 1},
                      SplitterParam{GraphFamily::kPath, 2},
                      SplitterParam{GraphFamily::kRandomTree, 1},
                      SplitterParam{GraphFamily::kRandomTree, 2},
                      SplitterParam{GraphFamily::kCaterpillar, 2},
                      SplitterParam{GraphFamily::kGrid, 1},
                      SplitterParam{GraphFamily::kStar, 2}),
    [](const ::testing::TestParamInfo<SplitterParam>& info) {
      return std::string(FamilyName(info.param.family)) + "_r" +
             std::to_string(info.param.radius);
    });

}  // namespace
}  // namespace folearn
