#include <gtest/gtest.h>

#include "fo/parser.h"
#include "graph/generators.h"
#include "learn/erm.h"
#include "learn/pac.h"
#include "util/rng.h"

namespace folearn {
namespace {

TEST(Pac, DrawSampleRespectsDistribution) {
  Graph g = MakePath(10);
  AddPeriodicColor(g, "Red", 2, 0);
  auto dist = MakeQueryDistribution(g, MustParseFormula("Red(x1)"),
                                    QueryVars(1), 1, 0.0);
  Rng rng(4);
  TrainingSet sample = DrawSample(*dist, 200, rng);
  EXPECT_EQ(sample.size(), 200u);
  for (const LabeledExample& example : sample) {
    EXPECT_EQ(example.label, example.tuple[0] % 2 == 0);
  }
}

TEST(Pac, NoiseFlipsRoughlyTheRightFraction) {
  Graph g = MakePath(10);
  AddPeriodicColor(g, "Red", 2, 0);
  auto dist = MakeQueryDistribution(g, MustParseFormula("Red(x1)"),
                                    QueryVars(1), 1, 0.3);
  Rng rng(4);
  TrainingSet sample = DrawSample(*dist, 3000, rng);
  int64_t flipped = 0;
  for (const LabeledExample& example : sample) {
    if (example.label != (example.tuple[0] % 2 == 0)) ++flipped;
  }
  double rate = static_cast<double>(flipped) / sample.size();
  EXPECT_NEAR(rate, 0.3, 0.05);
}

TEST(Pac, SampleComplexityBoundBehaviour) {
  // Bound shrinks with ε², grows with ln|H| and ln(1/δ).
  EXPECT_GT(AgnosticSampleComplexity(10.0, 0.05, 0.05),
            AgnosticSampleComplexity(10.0, 0.1, 0.05));
  EXPECT_GT(AgnosticSampleComplexity(20.0, 0.1, 0.05),
            AgnosticSampleComplexity(10.0, 0.1, 0.05));
  EXPECT_GT(AgnosticSampleComplexity(10.0, 0.1, 0.001),
            AgnosticSampleComplexity(10.0, 0.1, 0.1));
  // Concrete value: 2(10 + ln 40)/0.01 = 2000 + 200·ln40 ≈ 2738.
  EXPECT_EQ(AgnosticSampleComplexity(10.0, 0.1, 0.05), 2738);
}

TEST(Pac, LnHypothesisCountGrowsWithEll) {
  Rng rng(9);
  Graph g = MakeRandomTree(30, rng);
  double ell0 = EstimateLnHypothesisCount(g, 1, 0, 1, 2, 200, rng);
  double ell2 = EstimateLnHypothesisCount(g, 1, 2, 1, 2, 200, rng);
  EXPECT_GT(ell2, ell0);
  EXPECT_GT(ell0, 0.0);
}

TEST(Pac, RealisableExperimentGeneralisesWithEnoughData) {
  Rng rng(12);
  Graph g = MakeCaterpillar(15, 2);
  AddPeriodicColor(g, "Red", 3, 0);
  auto dist = MakeQueryDistribution(
      g, MustParseFormula("exists z. (E(x1, z) & Red(z))"), QueryVars(1), 1,
      0.0);
  auto learner = [&](const TrainingSet& train) {
    return TypeMajorityErm(g, train, {}, {1, -1}).hypothesis;
  };
  PacExperimentResult small =
      RunPacExperiment(g, *dist, /*m_train=*/5, /*m_test=*/500, learner, rng);
  PacExperimentResult big =
      RunPacExperiment(g, *dist, /*m_train=*/200, /*m_test=*/500, learner,
                       rng);
  EXPECT_EQ(big.training_error, 0.0);  // realisable: ERM fits exactly
  EXPECT_LE(big.generalization_error, 0.05);
  // More data can only help (weak assertion to avoid flakiness).
  EXPECT_LE(big.generalization_error, small.generalization_error + 0.05);
}

TEST(Pac, AgnosticErrorApproachesNoiseFloor) {
  Rng rng(21);
  Graph g = MakePath(20);
  AddPeriodicColor(g, "Red", 2, 0);
  const double noise = 0.2;
  auto dist = MakeQueryDistribution(g, MustParseFormula("Red(x1)"),
                                    QueryVars(1), 1, noise);
  auto learner = [&](const TrainingSet& train) {
    return TypeMajorityErm(g, train, {}, {1, -1}).hypothesis;
  };
  PacExperimentResult result =
      RunPacExperiment(g, *dist, /*m_train=*/400, /*m_test=*/1000, learner,
                       rng);
  // Bayes error = noise; ERM should land near it, not at 0.
  EXPECT_GE(result.generalization_error, noise - 0.07);
  EXPECT_LE(result.generalization_error, noise + 0.07);
  EXPECT_GE(result.training_error, noise - 0.1);
}

TEST(Pac, EstimateGeneralizationErrorOfConstantClassifier) {
  Graph g = MakePath(10);
  AddPeriodicColor(g, "Red", 2, 0);  // half the vertices
  auto dist = MakeQueryDistribution(g, MustParseFormula("Red(x1)"),
                                    QueryVars(1), 1, 0.0);
  Rng rng(2);
  double error = EstimateGeneralizationError(
      [](std::span<const Vertex>) { return true; }, *dist, 2000, rng);
  EXPECT_NEAR(error, 0.5, 0.05);
}

}  // namespace
}  // namespace folearn
