#include <gtest/gtest.h>

#include "graph/generators.h"
#include "nd/covering.h"
#include "nd/splitter_game.h"
#include "util/rng.h"

namespace folearn {
namespace {

// --- Lemma 3: the ball covering ----------------------------------------------

TEST(Covering, SingleCenterIsItself) {
  Graph g = MakePath(10);
  Vertex x[] = {4};
  CoveringResult covering = GreedyBallCovering(g, x, 2);
  EXPECT_EQ(covering.centers, std::vector<Vertex>{4});
  EXPECT_EQ(covering.radius, 2);
  EXPECT_EQ(covering.iterations, 0);
  EXPECT_TRUE(VerifyCovering(g, x, covering, 2));
}

TEST(Covering, DisjointCentersKeepRadius) {
  Graph g = MakePath(30);
  Vertex x[] = {2, 15, 27};
  CoveringResult covering = GreedyBallCovering(g, x, 2);
  EXPECT_EQ(covering.centers.size(), 3u);
  EXPECT_EQ(covering.radius, 2);
  EXPECT_TRUE(VerifyCovering(g, x, covering, 2));
}

TEST(Covering, OverlappingCentersTripleRadius) {
  Graph g = MakePath(30);
  Vertex x[] = {10, 12};  // balls of radius 2 overlap at 11
  CoveringResult covering = GreedyBallCovering(g, x, 2);
  EXPECT_EQ(covering.centers.size(), 1u);
  EXPECT_EQ(covering.radius, 6);
  EXPECT_TRUE(VerifyCovering(g, x, covering, 2));
}

TEST(Covering, WorstCaseGeometricChain) {
  // Centres at positions 3^i·r on a path: each iteration merges one.
  Graph g = MakePath(200);
  std::vector<Vertex> x = {0, 3, 9, 27, 81};
  CoveringResult covering = GreedyBallCovering(g, x, 1);
  EXPECT_TRUE(VerifyCovering(g, x, covering, 1));
  EXPECT_LE(covering.iterations, static_cast<int>(x.size()) - 1);
}

TEST(Covering, PropertyOnRandomTrees) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = MakeRandomTree(40, rng);
    int count = 1 + static_cast<int>(rng.UniformIndex(6));
    std::vector<Vertex> x;
    for (int i = 0; i < count; ++i) {
      x.push_back(static_cast<Vertex>(rng.UniformIndex(g.order())));
    }
    int r = 1 + static_cast<int>(rng.UniformIndex(3));
    CoveringResult covering = GreedyBallCovering(g, x, r);
    EXPECT_TRUE(VerifyCovering(g, x, covering, r))
        << "trial=" << trial << " r=" << r;
    for (Vertex z : covering.centers) {
      EXPECT_TRUE(std::find(x.begin(), x.end(), z) != x.end())
          << "Z must be a subset of X";
    }
  }
}

TEST(Covering, DisconnectedComponentsAreDisjoint) {
  Graph g = DisjointUnion(MakePath(5), MakePath(5));
  Vertex x[] = {2, 7};
  CoveringResult covering = GreedyBallCovering(g, x, 3);
  // Different components: balls can never intersect.
  EXPECT_EQ(covering.centers.size(), 2u);
  EXPECT_EQ(covering.radius, 3);
}

// --- Splitter game -------------------------------------------------------------

TEST(SplitterGame, EmptyGraphImmediateWin) {
  Graph g(0);
  auto splitter = MakeCenterSplitter();
  auto connector = MakeGreedyBallConnector();
  SplitterGameResult result = PlaySplitterGame(g, 1, 5, *splitter, *connector);
  EXPECT_TRUE(result.splitter_won);
  EXPECT_EQ(result.rounds_used, 0);
}

TEST(SplitterGame, SingleVertexOneRound) {
  Graph g(1);
  auto splitter = MakeCenterSplitter();
  auto connector = MakeGreedyBallConnector();
  SplitterGameResult result = PlaySplitterGame(g, 2, 5, *splitter, *connector);
  EXPECT_TRUE(result.splitter_won);
  EXPECT_EQ(result.rounds_used, 1);
}

TEST(SplitterGame, StarCenterStrategyRadiusOne) {
  // On a star at radius 1: Connector picks the centre (largest ball);
  // Splitter deleting the centre leaves isolated leaves — each later round
  // kills one leaf-ball. With the centre gone, any pick's 1-ball is a
  // single leaf, so the game ends in 2 rounds with the greedy connector.
  Graph g = MakeStar(10);
  auto splitter = MakeGreedyDegreeSplitter();
  auto connector = MakeGreedyBallConnector();
  SplitterGameResult result =
      PlaySplitterGame(g, 1, 10, *splitter, *connector);
  EXPECT_TRUE(result.splitter_won);
  EXPECT_LE(result.rounds_used, 2);
}

TEST(SplitterGame, MovesAreRecordedInOriginalIds) {
  Graph g = MakePath(9);
  auto splitter = MakeTreeSplitter();
  auto connector = MakeGreedyBallConnector();
  SplitterGameResult result = PlaySplitterGame(g, 2, 20, *splitter,
                                               *connector);
  EXPECT_TRUE(result.splitter_won);
  EXPECT_EQ(result.splitter_moves.size(),
            static_cast<size_t>(result.rounds_used));
  for (Vertex v : result.splitter_moves) {
    EXPECT_TRUE(g.IsValidVertex(v));
  }
}

TEST(SplitterGame, TreeStrategyWinsOnTreesWithinBudget) {
  Rng rng(5);
  auto splitter = MakeTreeSplitter();
  for (int trial = 0; trial < 8; ++trial) {
    Graph g = MakeRandomTree(60, rng);
    for (int radius : {1, 2}) {
      auto random_connector = MakeRandomConnector(rng);
      auto greedy_connector = MakeGreedyBallConnector();
      int budget = DefaultSplitterRounds(radius) + radius + 4;
      for (ConnectorStrategy* connector :
           {random_connector.get(), greedy_connector.get()}) {
        SplitterGameResult result =
            PlaySplitterGame(g, radius, budget, *splitter, *connector);
        EXPECT_TRUE(result.splitter_won)
            << "trial=" << trial << " radius=" << radius
            << " connector=" << connector->name();
      }
    }
  }
}

TEST(SplitterGame, CliqueNeedsManyRounds) {
  // On K_n at any radius ≥ 1, each round removes exactly one vertex, so
  // Splitter needs exactly n rounds — the somewhere-dense signature.
  Graph g = MakeComplete(7);
  auto splitter = MakeGreedyDegreeSplitter();
  auto connector = MakeGreedyBallConnector();
  SplitterGameResult result =
      PlaySplitterGame(g, 1, 20, *splitter, *connector);
  EXPECT_TRUE(result.splitter_won);
  EXPECT_EQ(result.rounds_used, 7);
}

TEST(SplitterGame, SubdividedCliqueIsSomewhereDenseAtRadiusThree) {
  // …but the family contains every clique as a depth-1 topological minor,
  // and at radius 3 (a branch vertex's 3-ball covers the whole structure,
  // including the far subdivision vertices at distance 3) the rounds grow
  // linearly with n — the somewhere-dense signature that degeneracy alone
  // cannot see. At radius 2 the 3-balls do NOT cover the far subdivision
  // vertices, so the game stays short.
  auto splitter = MakeGreedyDegreeSplitter();
  auto connector = MakeGreedyBallConnector();
  int rounds_small =
      PlaySplitterGame(MakeSubdividedComplete(5), 3, 100, *splitter,
                       *connector)
          .rounds_used;
  int rounds_large =
      PlaySplitterGame(MakeSubdividedComplete(10), 3, 100, *splitter,
                       *connector)
          .rounds_used;
  EXPECT_GT(rounds_large, rounds_small);
  EXPECT_GE(rounds_large, 10);  // measured: n + 1
  int rounds_r2 =
      PlaySplitterGame(MakeSubdividedComplete(10), 2, 100, *splitter,
                       *connector)
          .rounds_used;
  EXPECT_LT(rounds_r2, rounds_large);
}

TEST(SplitterGame, MinimaxOptimalOnTinyGraphs) {
  // Minimax must not be worse than the tree heuristic on small trees.
  Rng rng(21);
  auto minimax = MakeMinimaxSplitter();
  auto tree = MakeTreeSplitter();
  auto connector = MakeGreedyBallConnector();
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = MakeRandomTree(8, rng);
    SplitterGameResult with_minimax =
        PlaySplitterGame(g, 1, 12, *minimax, *connector);
    SplitterGameResult with_tree =
        PlaySplitterGame(g, 1, 12, *tree, *connector);
    EXPECT_TRUE(with_minimax.splitter_won);
    EXPECT_TRUE(with_tree.splitter_won);
    EXPECT_LE(with_minimax.rounds_used, with_tree.rounds_used)
        << "trial " << trial;
  }
}

TEST(SplitterGame, MeasureRoundsTakesWorstConnector) {
  Graph g = MakePath(15);
  auto splitter = MakeTreeSplitter();
  Rng rng(9);
  auto random_connector = MakeRandomConnector(rng);
  auto greedy_connector = MakeGreedyBallConnector();
  std::vector<ConnectorStrategy*> connectors = {random_connector.get(),
                                                greedy_connector.get()};
  int rounds = MeasureSplitterRounds(g, 1, 10, *splitter, connectors);
  EXPECT_GE(rounds, 1);
  EXPECT_LE(rounds, 10);
}

TEST(SplitterGame, RadiusZeroKillsOneVertexPerRound) {
  Graph g = MakePath(4);
  auto splitter = MakeCenterSplitter();
  auto connector = MakeGreedyBallConnector();
  SplitterGameResult result =
      PlaySplitterGame(g, 0, 10, *splitter, *connector);
  // Radius-0 ball is the pick itself; removing it empties the game in one
  // round (the next graph is the empty ball minus nothing = ∅).
  EXPECT_TRUE(result.splitter_won);
  EXPECT_EQ(result.rounds_used, 1);
}

}  // namespace
}  // namespace folearn
