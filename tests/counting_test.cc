#include <gtest/gtest.h>

#include "fo/parser.h"
#include "fo/printer.h"
#include "fo/transform.h"
#include "graph/generators.h"
#include "learn/counting_erm.h"
#include "learn/erm.h"
#include "mc/bottom_up.h"
#include "mc/evaluator.h"
#include "types/counting_type.h"
#include "util/rng.h"

namespace folearn {
namespace {

// --- Formula layer ------------------------------------------------------------

TEST(CountingFormula, FoldingRules) {
  FormulaRef body = Formula::Edge("x", "z");
  EXPECT_EQ(Formula::CountExists(0, "z", body)->kind(), FormulaKind::kTrue);
  EXPECT_EQ(Formula::CountExists(1, "z", body)->kind(),
            FormulaKind::kExists);
  EXPECT_EQ(Formula::CountExists(2, "z", Formula::False())->kind(),
            FormulaKind::kFalse);
  FormulaRef counted = Formula::CountExists(3, "z", body);
  EXPECT_EQ(counted->kind(), FormulaKind::kCountExists);
  EXPECT_EQ(counted->threshold(), 3);
  EXPECT_EQ(counted->quantifier_rank(), 1);
  EXPECT_EQ(counted->free_variables(), std::vector<std::string>{"x"});
  // ∃^{≥t} x true is size-dependent and must NOT fold.
  EXPECT_EQ(Formula::CountExists(2, "z", Formula::True())->kind(),
            FormulaKind::kCountExists);
}

TEST(CountingFormula, ParserPrinterRoundTrip) {
  const char* inputs[] = {
      "exists>=2 z. E(x, z)",
      "exists>=3 z. E(x, z) & Red(z)",
      "!(exists>=2 z. E(x, z))",
  };
  for (const char* input : inputs) {
    FormulaRef once = MustParseFormula(input);
    EXPECT_EQ(ToString(once), input);
    FormulaRef twice = MustParseFormula(ToString(once));
    EXPECT_EQ(ToString(once), ToString(twice));
  }
  // exists>=1 normalises to a plain exists.
  EXPECT_EQ(ToString(MustParseFormula("exists>=1 z. E(x, z)")),
            "exists z. E(x, z)");
  EXPECT_EQ(ToString(MustParseFormula("exists>=0 z. E(x, z)")), "true");
}

TEST(CountingFormula, ParserRejectsMalformedThreshold) {
  std::string error;
  EXPECT_FALSE(ParseFormula("exists>= z. E(x, z)", &error).has_value());
  EXPECT_FALSE(ParseFormula("exists> 2 z. E(x, z)", &error).has_value());
  EXPECT_FALSE(ParseFormula("forall>=2 z. E(x, z)", &error).has_value());
}

// --- Evaluation ---------------------------------------------------------------

TEST(CountingEvaluator, DegreeThresholds) {
  Graph g = MakeStar(4);  // centre 0 with degree 4, leaves degree 1
  std::string vars[] = {"x"};
  for (int t = 1; t <= 5; ++t) {
    FormulaRef at_least =
        Formula::CountExists(t, "z", Formula::Edge("x", "z"));
    Vertex centre[] = {0};
    Vertex leaf[] = {1};
    EXPECT_EQ(EvaluateQuery(g, at_least, vars, centre), t <= 4) << t;
    EXPECT_EQ(EvaluateQuery(g, at_least, vars, leaf), t <= 1) << t;
  }
}

TEST(CountingEvaluator, ThresholdOverTrueCountsVertices) {
  FormulaRef at_least_4 = Formula::CountExists(4, "z", Formula::True());
  EXPECT_FALSE(EvaluateSentence(MakePath(3), at_least_4));
  EXPECT_TRUE(EvaluateSentence(MakePath(4), at_least_4));
}

TEST(CountingEvaluator, BottomUpAgrees) {
  Rng rng(71);
  Graph g = MakeErdosRenyi(8, 0.35, rng);
  AddRandomColors(g, {"Red"}, 0.5, rng);
  const char* formulas[] = {
      "exists>=2 z. E(x1, z)",
      "exists>=2 z. (E(x1, z) & Red(z))",
      "exists>=3 z. !E(x1, z)",
      "exists>=2 z. exists>=2 w. (E(z, w) & E(x1, z))",
  };
  std::string vars[] = {"x1"};
  for (const char* text : formulas) {
    FormulaRef f = MustParseFormula(text);
    Relation relation = EvaluateBottomUp(g, f);
    for (Vertex v = 0; v < g.order(); ++v) {
      Vertex tuple[] = {v};
      Assignment assignment(vars, tuple);
      EXPECT_EQ(Evaluate(g, f, assignment), relation.Contains(assignment))
          << text << " v=" << v;
    }
  }
}

TEST(CountingEvaluator, RelativizedCountingCountsBallOnly) {
  Graph g = MakePath(9);
  FormulaRef two_neighbours =
      MustParseFormula("exists>=2 z. E(x, z)");
  FormulaRef local = RelativizeToBall(two_neighbours, {"x"}, 1);
  std::string vars[] = {"x"};
  Vertex mid[] = {4};
  Vertex end[] = {0};
  EXPECT_TRUE(EvaluateQuery(g, local, vars, mid));
  EXPECT_FALSE(EvaluateQuery(g, local, vars, end));
}

// --- Counting types -------------------------------------------------------------

TEST(CountingTypes, SeparateDegreeOneFromTwoAtRankOne) {
  // Plain FO rank-1 types CANNOT separate path endpoints from midpoints
  // (see types_test); counting types with cap 2 can.
  Graph g = MakePath(5);
  TypeRegistry plain(g.vocabulary());
  CountingTypeRegistry counting(g.vocabulary(), 2);
  Vertex end[] = {0};
  Vertex mid[] = {2};
  EXPECT_EQ(ComputeType(g, end, 1, &plain), ComputeType(g, mid, 1, &plain));
  EXPECT_NE(ComputeCountingType(g, end, 1, &counting),
            ComputeCountingType(g, mid, 1, &counting));
}

TEST(CountingTypes, CapOneEquivalentToPlainTypes) {
  Rng rng(72);
  Graph g = MakeRandomTree(12, rng);
  AddRandomColors(g, {"Red"}, 0.4, rng);
  TypeRegistry plain(g.vocabulary());
  CountingTypeRegistry counting(g.vocabulary(), 1);
  // Same partition of vertices.
  std::map<TypeId, std::set<Vertex>> plain_classes;
  std::map<TypeId, std::set<Vertex>> counting_classes;
  for (Vertex v = 0; v < g.order(); ++v) {
    Vertex tuple[] = {v};
    plain_classes[ComputeType(g, tuple, 2, &plain)].insert(v);
    counting_classes[ComputeCountingType(g, tuple, 2, &counting)].insert(v);
  }
  std::set<std::set<Vertex>> plain_partition;
  std::set<std::set<Vertex>> counting_partition;
  for (auto& [id, cls] : plain_classes) plain_partition.insert(cls);
  for (auto& [id, cls] : counting_classes) counting_partition.insert(cls);
  EXPECT_EQ(plain_partition, counting_partition);
}

TEST(CountingTypes, HigherCapRefines) {
  Rng rng(73);
  Graph g = MakePreferentialAttachment(15, 2, rng);
  CountingTypeRegistry cap2(g.vocabulary(), 2);
  CountingTypeRegistry cap4(g.vocabulary(), 4);
  std::set<TypeId> classes2;
  std::set<TypeId> classes4;
  for (Vertex v = 0; v < g.order(); ++v) {
    Vertex tuple[] = {v};
    classes2.insert(ComputeCountingType(g, tuple, 1, &cap2));
    classes4.insert(ComputeCountingType(g, tuple, 1, &cap4));
  }
  EXPECT_GE(classes4.size(), classes2.size());
}

TEST(CountingHintikka, DefinesCountingTypeExactly) {
  Rng rng(74);
  Graph g = MakeRandomTree(9, rng);
  AddRandomColors(g, {"Red"}, 0.4, rng);
  CountingTypeRegistry registry(g.vocabulary(), 2);
  std::vector<TypeId> types;
  for (Vertex v = 0; v < g.order(); ++v) {
    Vertex tuple[] = {v};
    types.push_back(ComputeCountingType(g, tuple, 1, &registry));
  }
  CountingHintikkaBuilder builder(registry);
  std::string vars[] = {"x1"};
  for (Vertex v = 0; v < g.order(); ++v) {
    FormulaRef phi = builder.Build(types[v], {"x1"});
    for (Vertex u = 0; u < g.order(); ++u) {
      Vertex tuple[] = {u};
      EXPECT_EQ(EvaluateQuery(g, phi, vars, tuple), types[u] == types[v])
          << "u=" << u << " v=" << v;
    }
  }
}

// --- Counting ERM ----------------------------------------------------------------

TEST(CountingErm, LearnsDegreeTwoAtRankOneWherePlainFoFails) {
  Rng rng(75);
  Graph g = MakeRandomTree(30, rng);
  // Target: deg(x) ≥ 2.
  TrainingSet examples;
  for (Vertex v = 0; v < g.order(); ++v) {
    examples.push_back({{v}, g.Degree(v) >= 2});
  }
  // Plain FO at rank 1, radius 1: cannot always separate (leaves vs
  // internal vertices share rank-1 local types when colours are absent).
  ErmResult plain = TypeMajorityErm(g, examples, {}, {1, 1});
  // FO+C at rank 1, cap 2: exact.
  CountingErmOptions options;
  options.rank = 1;
  options.cap = 2;
  options.radius = 1;
  CountingErmResult counting =
      CountingTypeMajorityErm(g, examples, {}, options);
  EXPECT_EQ(counting.training_error, 0.0);
  EXPECT_LE(counting.training_error, plain.training_error);
  EXPECT_GT(plain.training_error, 0.0)
      << "tree should have degree variety that plain rank-1 FO cannot see";
}

TEST(CountingErm, ExplicitFormulaMatchesClassifier) {
  Rng rng(76);
  Graph g = MakeCaterpillar(6, 2);
  TrainingSet examples;
  for (Vertex v = 0; v < g.order(); ++v) {
    examples.push_back({{v}, g.Degree(v) >= 3});
  }
  CountingErmOptions options;
  options.rank = 1;
  options.cap = 3;
  options.radius = 1;
  CountingErmResult result = CountingTypeMajorityErm(g, examples, {},
                                                     options);
  EXPECT_EQ(result.training_error, 0.0);
  Hypothesis explicit_h = result.hypothesis.ToExplicit();
  for (const LabeledExample& example : examples) {
    EXPECT_EQ(explicit_h.Classify(g, example.tuple), example.label);
  }
}

TEST(CountingErm, BruteForceWithParameters) {
  // Two hubs; target = "adjacent to hub A AND deg(x) small" style mixed
  // concept: at least, brute force must find zero error with the hub as
  // parameter at rank 1 cap 2.
  Graph g = DisjointCopies(MakeStar(6), 2);
  TrainingSet examples;
  for (Vertex v = 1; v <= 6; ++v) examples.push_back({{v}, true});
  for (Vertex v = 8; v <= 13; ++v) examples.push_back({{v}, false});
  CountingErmOptions options;
  options.rank = 1;
  options.cap = 2;
  options.radius = 1;
  CountingErmResult result = CountingBruteForceErm(g, examples, 1, options);
  EXPECT_EQ(result.training_error, 0.0);
  EXPECT_EQ(result.hypothesis.parameters.size(), 1u);
}

TEST(CountingErm, NeverWorseThanPlainErmAtSameRank) {
  // The counting class (cap ≥ 2) refines the plain class at equal rank and
  // radius, so its ERM optimum can only be at most the FO optimum.
  Rng rng(77);
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = MakePreferentialAttachment(25, 2, rng);
    AddRandomColors(g, {"Red"}, 0.3, rng);
    TrainingSet examples;
    for (Vertex v = 0; v < g.order(); ++v) {
      bool label = g.Degree(v) >= 3;
      if (rng.Bernoulli(0.1)) label = !label;
      examples.push_back({{v}, label});
    }
    ErmResult plain = TypeMajorityErm(g, examples, {}, {1, 1});
    CountingErmOptions options;
    options.rank = 1;
    options.cap = 3;
    options.radius = 1;
    CountingErmResult counting =
        CountingTypeMajorityErm(g, examples, {}, options);
    EXPECT_LE(counting.training_error, plain.training_error + 1e-12)
        << "trial=" << trial;
  }
}

}  // namespace
}  // namespace folearn
