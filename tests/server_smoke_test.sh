#!/bin/sh
# End-to-end smoke test of the folearnd daemon: start it, drive a full
# load-graph → learn → evaluate → query round trip with folearn_client,
# exercise the stats counters, and require a signal-driven clean shutdown
# (exit 0, socket file removed). Invoked by CI (and runnable by hand)
# with the directory holding the folearnd / folearn_client / folearn_cli
# binaries as $1.
set -eu

TOOLS="$1"
DIR="$(mktemp -d)"
SOCK="$DIR/folearnd.sock"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

client() {
  "$TOOLS/folearn_client" --socket "$SOCK" "$@"
}

# Problem setup: a coloured random tree and an "is Red" dataset, the same
# shape as cli_test.sh.
"$TOOLS/folearn_cli" generate --family tree --n 40 --seed 11 \
    --color Red:0.3 --out "$DIR/g.txt"
reds=$(grep '^color Red' "$DIR/g.txt" | cut -d' ' -f3-)
{
  echo "examples 1"
  v=0
  while [ "$v" -lt 40 ]; do
    label="-"
    for r in $reds; do
      [ "$r" = "$v" ] && label="+"
    done
    echo "$label $v"
    v=$((v + 1))
  done
} > "$DIR/d.txt"

# 1. Start the daemon and wait for its socket to appear.
"$TOOLS/folearnd" --socket "$SOCK" --max-inflight 4 2> "$DIR/daemon.log" &
DAEMON_PID=$!
tries=0
while [ ! -S "$SOCK" ]; do
  tries=$((tries + 1))
  [ "$tries" -lt 100 ] || { echo "daemon never bound $SOCK" >&2; exit 1; }
  kill -0 "$DAEMON_PID" 2>/dev/null || {
    echo "daemon died at startup:" >&2; cat "$DIR/daemon.log" >&2; exit 1
  }
  sleep 0.1
done

# 2. Control plane answers.
client ping > /dev/null

# 3. Load the graph into a session.
client load-graph --graph-file "$DIR/g.txt" > "$DIR/load.out"
grep -q '^session: ' "$DIR/load.out"
session=$(sed -n 's/^session: //p' "$DIR/load.out")

# 4. Learn over the wire; the labels are realisable, so training error 0.
client learn --session "$session" --data-file "$DIR/d.txt" \
    --rank 1 --radius 1 --out "$DIR/m.txt" > "$DIR/learn.out"
grep -q '^training-error: 0.000000$' "$DIR/learn.out"
grep -q '^hypothesis ' "$DIR/m.txt"

# 5. The learned model evaluates to zero error on its own training set.
client evaluate --session "$session" --model-file "$DIR/m.txt" \
    --data-file "$DIR/d.txt" > "$DIR/eval.out"
grep -q '^error: 0.000000$' "$DIR/eval.out"

# 6. Queries answer, and the repeat hits the warm plan cache.
client query --session "$session" --sentence 'exists x. Red(x)' \
    > "$DIR/q1.out"
grep -q '^result: true$' "$DIR/q1.out"
client query --session "$session" --sentence 'exists x. Red(x)' \
    > /dev/null
client stats > "$DIR/stats.out"
grep -q '^plan-hits: [1-9]' "$DIR/stats.out"

# 7. Malformed input gets a well-formed error response, not a dropped
# connection or a dead daemon.
rc=0
client learn --session "$session" --data-file "$DIR/d.txt" \
    --rank 4x 2> "$DIR/bad.log" || rc=$?
[ "$rc" -eq 64 ] || { echo "bad rank: expected 64, got $rc" >&2; exit 1; }
client ping > /dev/null

# 8. SIGTERM shuts the daemon down cleanly and removes the socket file.
kill "$DAEMON_PID"
daemon_rc=0
wait "$DAEMON_PID" || daemon_rc=$?
DAEMON_PID=""
[ "$daemon_rc" -eq 0 ] || {
  echo "daemon exit $daemon_rc:" >&2; cat "$DIR/daemon.log" >&2; exit 1
}
grep -q 'shut down cleanly' "$DIR/daemon.log"
[ ! -e "$SOCK" ] || { echo "socket file left behind" >&2; exit 1; }

echo "server smoke test passed"
