#include <gtest/gtest.h>

#include "fo/parser.h"
#include "graph/generators.h"
#include "learn/active.h"
#include "mc/evaluator.h"
#include "util/rng.h"

namespace folearn {
namespace {

TEST(ActiveLearning, ExactlyIdentifiesRealizableTarget) {
  Rng rng(500);
  Graph g = MakeRandomTree(40, rng);
  AddRandomColors(g, {"Red"}, 0.4, rng);
  FormulaRef target = MustParseFormula("exists z. (E(x1, z) & Red(z))");
  std::vector<std::string> vars = QueryVars(1);
  MembershipOracle oracle = [&](std::span<const Vertex> tuple) {
    return EvaluateQuery(g, target, vars, tuple);
  };
  std::vector<std::vector<Vertex>> candidates = AllTuples(g.order(), 1);
  ActiveLearnResult result =
      LearnWithMembershipQueries(g, candidates, {}, {1, 2}, oracle);
  // Exact identification on the whole instance space.
  for (const std::vector<Vertex>& tuple : candidates) {
    EXPECT_EQ(result.hypothesis.Classify(g, tuple), oracle(tuple));
  }
  // Query complexity = #types, far below n.
  EXPECT_EQ(result.membership_queries, result.distinct_types);
  EXPECT_LT(result.membership_queries, g.order() / 2);
}

TEST(ActiveLearning, QueryCountIndependentOfGraphSize) {
  Rng rng(501);
  int64_t small_queries = 0;
  int64_t large_queries = 0;
  // Cycles with n ≡ 0 (mod 3) are fully periodic — no endpoint types.
  for (int n : {51, 402}) {
    Graph g = MakeCycle(n);
    AddPeriodicColor(g, "Red", 3, 0);
    MembershipOracle oracle = [&](std::span<const Vertex> tuple) {
      return g.HasColor(tuple[0], *g.FindColor("Red"));
    };
    ActiveLearnResult result = LearnWithMembershipQueries(
        g, AllTuples(g.order(), 1), {}, {1, 1}, oracle);
    (n == 51 ? small_queries : large_queries) = result.membership_queries;
  }
  // Periodic structure: type count (hence query count) is n-independent.
  EXPECT_EQ(small_queries, large_queries);
}

TEST(ActiveLearning, WithParameters) {
  Graph g = DisjointCopies(MakeStar(6), 2);
  // Target: in the first star (hub 0's component).
  MembershipOracle oracle = [](std::span<const Vertex> tuple) {
    return tuple[0] <= 6;
  };
  Vertex params[] = {0};
  ActiveLearnResult result = LearnWithMembershipQueries(
      g, AllTuples(g.order(), 1), params, {1, 2}, oracle);
  for (Vertex v = 0; v < g.order(); ++v) {
    Vertex tuple[] = {v};
    EXPECT_EQ(result.hypothesis.Classify(g, tuple), v <= 6) << v;
  }
}

TEST(ActiveLearning, PairTuples) {
  Graph g = MakePath(8);
  // Target: the two entries are adjacent.
  MembershipOracle oracle = [&](std::span<const Vertex> tuple) {
    return g.HasEdge(tuple[0], tuple[1]);
  };
  ActiveLearnResult result = LearnWithMembershipQueries(
      g, AllTuples(g.order(), 2), {}, {0, 0}, oracle);
  for (Vertex a = 0; a < g.order(); ++a) {
    for (Vertex b = 0; b < g.order(); ++b) {
      Vertex tuple[] = {a, b};
      EXPECT_EQ(result.hypothesis.Classify(g, tuple), g.HasEdge(a, b));
    }
  }
  // Atomic pair types on an uncoloured path: equal / adjacent / far.
  EXPECT_EQ(result.distinct_types, 3);
}

TEST(ActiveLearning, NonRealizableTargetGetsClassProjection) {
  // Target distinguishes two same-type vertices: impossible in the class;
  // the learner answers with the representative's label for both.
  Graph g = MakePath(9);  // vertices 3 and 5 share all local types (r=1)
  MembershipOracle oracle = [](std::span<const Vertex> tuple) {
    return tuple[0] == 3;  // not type-definable
  };
  ActiveLearnResult result = LearnWithMembershipQueries(
      g, AllTuples(g.order(), 1), {}, {1, 1}, oracle);
  Vertex a[] = {3};
  Vertex b[] = {5};
  EXPECT_EQ(result.hypothesis.Classify(g, a),
            result.hypothesis.Classify(g, b));
}

}  // namespace
}  // namespace folearn
