#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "learn/sublinear.h"
#include "util/rng.h"

namespace folearn {
namespace {

// The sublinear learner must match the full brute force on workloads whose
// optimal parameter is near the examples (which, by the locality argument,
// is every workload — far parameters cannot help).
TEST(SublinearErm, MatchesBruteForceOnHubWorkloads) {
  Rng rng(90);
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = MakeBoundedDegree(60, 4, 90, rng);
    Vertex w_star = static_cast<Vertex>(rng.UniformIndex(g.order()));
    Vertex source[] = {w_star};
    std::vector<int> dist = BfsDistances(g, source);
    TrainingSet examples;
    for (Vertex v = 0; v < g.order(); v += 2) {
      examples.push_back({{v}, dist[v] != kUnreachable && dist[v] <= 1});
    }
    ErmOptions options{1, 1};
    SublinearErmResult sub = SublinearErm(g, examples, 1, options);
    ErmResult brute = BruteForceErm(g, examples, 1, options);
    EXPECT_EQ(sub.erm.training_error, brute.training_error)
        << "trial " << trial;
  }
}

TEST(SublinearErm, PoolSmallerThanGraphWhenExamplesAreClustered) {
  Rng rng(91);
  Graph g = MakeBoundedDegree(400, 3, 550, rng);
  // Examples concentrated on 10 vertices.
  TrainingSet examples;
  for (Vertex v = 0; v < 10; ++v) {
    examples.push_back({{v}, v % 2 == 0});
  }
  SublinearErmResult result = SublinearErm(g, examples, 1, {1, 1});
  EXPECT_LT(result.candidate_pool_size, g.order() / 2);
  EXPECT_GT(result.candidate_pool_size, 0);
}

TEST(SublinearErm, EllZeroDelegatesToPlainErm) {
  Graph g = MakePath(10);
  AddPeriodicColor(g, "Red", 2, 0);
  TrainingSet examples;
  for (Vertex v = 0; v < g.order(); ++v) {
    examples.push_back({{v}, v % 2 == 0});
  }
  SublinearErmResult sub = SublinearErm(g, examples, 0, {1, 1});
  ErmResult plain = TypeMajorityErm(g, examples, {}, {1, 1});
  EXPECT_EQ(sub.erm.training_error, plain.training_error);
}

TEST(SublinearErm, FarRepresentativeCoversInertSlots) {
  // Examples in one component; a second far component exists. A hypothesis
  // whose best parameter placement is "anywhere far" must still be
  // representable through the single far representative.
  Graph g = DisjointUnion(MakeStar(5), MakePath(20));
  TrainingSet examples;
  for (Vertex v = 0; v <= 5; ++v) {
    examples.push_back({{v}, v == 0});
  }
  SublinearErmResult result = SublinearErm(g, examples, 1, {1, 1});
  // Pool = star (within 3 of examples) + 1 far path vertex.
  EXPECT_LE(result.candidate_pool_size, 6 + 1 + 3);
  EXPECT_EQ(result.erm.training_error, 0.0);
}

// --- LocalTypeIndex -----------------------------------------------------------

TEST(LocalTypeIndex, LookupMatchesDirectComputation) {
  Rng rng(92);
  Graph g = MakeRandomTree(40, rng);
  AddRandomColors(g, {"Red"}, 0.4, rng);
  LocalTypeIndex index(g, 1, 2);
  // Types computed through the index's own registry must agree.
  for (Vertex v = 0; v < g.order(); ++v) {
    Vertex tuple[] = {v};
    TypeId direct = ComputeLocalType(g, tuple, 1, 2,
                                     index.registry().get());
    EXPECT_EQ(index.Lookup(v), direct) << v;
  }
  EXPECT_GT(index.distinct_types(), 1);
}

TEST(LocalTypeIndex, ErmMatchesDirectTypeMajority) {
  Rng rng(93);
  Graph g = MakeCaterpillar(12, 2);
  AddRandomColors(g, {"Red"}, 0.3, rng);
  LocalTypeIndex index(g, 1, 2);
  TrainingSet examples;
  for (Vertex v = 0; v < g.order(); ++v) {
    bool label = g.Degree(v) == 1;
    if (rng.Bernoulli(0.1)) label = !label;
    examples.push_back({{v}, label});
  }
  ErmResult indexed = index.Erm(examples);
  ErmResult direct = TypeMajorityErm(g, examples, {}, {1, 2});
  EXPECT_EQ(indexed.training_error, direct.training_error);
  // And the indexed hypothesis classifies identically.
  for (Vertex v = 0; v < g.order(); ++v) {
    Vertex tuple[] = {v};
    EXPECT_EQ(indexed.hypothesis.Classify(g, tuple),
              direct.hypothesis.Classify(g, tuple));
  }
}

TEST(LocalTypeIndex, RejectsNonUnaryExamples) {
  Graph g = MakePath(5);
  LocalTypeIndex index(g, 1, 1);
  TrainingSet pairs = {{{0, 1}, true}};
  EXPECT_DEATH(index.Erm(pairs), "unary");
}

}  // namespace
}  // namespace folearn
