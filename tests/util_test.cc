#include <gtest/gtest.h>

#include <set>

#include "util/combinatorics.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

namespace folearn {
namespace {

TEST(ForEachTuple, EnumeratesAllTuplesInOrder) {
  std::vector<std::vector<int64_t>> tuples;
  ForEachTuple(3, 2, [&](const std::vector<int64_t>& t) {
    tuples.push_back(t);
    return true;
  });
  ASSERT_EQ(tuples.size(), 9u);
  EXPECT_EQ(tuples.front(), (std::vector<int64_t>{0, 0}));
  EXPECT_EQ(tuples[1], (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(tuples.back(), (std::vector<int64_t>{2, 2}));
}

TEST(ForEachTuple, LengthZeroYieldsEmptyTuple) {
  int count = 0;
  ForEachTuple(5, 0, [&](const std::vector<int64_t>& t) {
    EXPECT_TRUE(t.empty());
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
}

TEST(ForEachTuple, EarlyStopReturnsFalse) {
  int count = 0;
  bool completed = ForEachTuple(10, 2, [&](const std::vector<int64_t>&) {
    return ++count < 5;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 5);
}

TEST(ForEachSubset, CountsMatchBinomial) {
  for (int n = 0; n <= 7; ++n) {
    for (int k = 0; k <= n; ++k) {
      int64_t count = 0;
      ForEachSubset(n, k, [&](const std::vector<int64_t>& s) {
        EXPECT_EQ(static_cast<int>(s.size()), k);
        EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
        ++count;
        return true;
      });
      EXPECT_EQ(count, Binomial(n, k)) << "n=" << n << " k=" << k;
    }
  }
}

TEST(ForEachSubsetUpTo, SmallerSizesFirst) {
  std::vector<size_t> sizes;
  ForEachSubsetUpTo(4, 0, 2, [&](const std::vector<int64_t>& s) {
    sizes.push_back(s.size());
    return true;
  });
  EXPECT_TRUE(std::is_sorted(sizes.begin(), sizes.end()));
  EXPECT_EQ(sizes.size(), 1u + 4u + 6u);
}

TEST(Binomial, KnownValues) {
  EXPECT_EQ(Binomial(0, 0), 1);
  EXPECT_EQ(Binomial(5, 2), 10);
  EXPECT_EQ(Binomial(10, 5), 252);
  EXPECT_EQ(Binomial(52, 5), 2598960);
  EXPECT_EQ(Binomial(5, 7), 0);
}

TEST(SaturatingPow, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(SaturatingPow(2, 10), 1024);
  EXPECT_EQ(SaturatingPow(10, 0), 1);
  EXPECT_EQ(SaturatingPow(2, 63), std::numeric_limits<int64_t>::max());
  EXPECT_EQ(SaturatingPow(1000000, 5), std::numeric_limits<int64_t>::max());
}

TEST(RamseyUpperBound, PigeonholeForSingletons) {
  // k=1: colours·(m−1)+1.
  EXPECT_EQ(RamseyUpperBound(1, 3, 4), 10);
}

TEST(RamseyUpperBound, TriangleBoundsAreClassical) {
  // R(3,3) = 6 ≤ our bound; 1-colour is trivial.
  EXPECT_EQ(RamseyUpperBound(2, 1, 3), 3);
  EXPECT_GE(RamseyUpperBound(2, 2, 3), 6);
  // 2-colour bound is the recurrence value 2·2+2 = 6 (tight!).
  EXPECT_EQ(RamseyUpperBound(2, 2, 3), 6);
  // 3 colours: R(3,3,3) = 17 ≤ bound.
  EXPECT_GE(RamseyUpperBound(2, 3, 3), 17);
}

TEST(RamseyUpperBound, MonotoneInColours) {
  int64_t previous = 0;
  for (int64_t colours = 1; colours <= 8; ++colours) {
    int64_t bound = RamseyUpperBound(2, colours, 3);
    EXPECT_GE(bound, previous);
    previous = bound;
  }
}

TEST(RamseyUpperBound, TrivialWhenSubsetFits) {
  EXPECT_EQ(RamseyUpperBound(2, 100, 2), 2);
  EXPECT_EQ(RamseyUpperBound(3, 5, 3), 3);
}

TEST(Rng, DeterministicAcrossSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(3);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(Strings, SplitAndStrip) {
  std::vector<std::string> pieces = Split("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(StripWhitespace("  hi \n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(Join(std::vector<std::string>{"x", "y"}, "+"), "x+y");
}

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "100"});
  std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(rendered.find("| b     | 100   |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2);
}

TEST(FormatDouble, RespectsDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

}  // namespace
}  // namespace folearn
