// Property tests (TEST_P sweeps) for the formula layer: parser/printer
// round-trips on random ASTs, evaluator equivalence (recursive vs
// bottom-up), and transform invariants, across seeds and graph families.

#include <gtest/gtest.h>

#include "fo/parser.h"
#include "fo/printer.h"
#include "fo/transform.h"
#include "graph/algorithms.h"
#include "mc/bottom_up.h"
#include "mc/evaluator.h"
#include "test_helpers.h"

namespace folearn {
namespace {

// --- Round trip over random formulas ------------------------------------------

class RoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripProperty, PrintParsePrintIsFixedPoint) {
  Rng rng(GetParam());
  const std::vector<std::string> colors = {"Red", "Blue"};
  for (int i = 0; i < 40; ++i) {
    FormulaRef f = RandomFormula(rng, {"x1", "x2"}, colors,
                                 /*quantifier_budget=*/2, /*depth=*/4,
                                 /*allow_counting=*/true);
    std::string printed = ToString(f);
    std::string error;
    std::optional<FormulaRef> reparsed = ParseFormula(printed, &error);
    ASSERT_TRUE(reparsed.has_value()) << printed << " — " << error;
    EXPECT_EQ(ToString(*reparsed), printed);
    EXPECT_EQ((*reparsed)->quantifier_rank(), f->quantifier_rank());
    EXPECT_EQ((*reparsed)->free_variables(), f->free_variables());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Recursive vs bottom-up evaluation ------------------------------------------

struct EvalEquivalenceParam {
  GraphFamily family;
  int seed;
};

class EvalEquivalenceProperty
    : public ::testing::TestWithParam<EvalEquivalenceParam> {};

TEST_P(EvalEquivalenceProperty, RecursiveMatchesBottomUp) {
  Rng rng(GetParam().seed);
  Graph g = MakeFamilyGraph(GetParam().family, 7, rng);
  AddRandomColors(g, {"Red"}, 0.5, rng);
  std::string vars[] = {"x1"};
  for (int i = 0; i < 25; ++i) {
    FormulaRef f = RandomFormula(rng, {"x1"}, {"Red"},
                                 /*quantifier_budget=*/2, /*depth=*/4,
                                 /*allow_counting=*/true);
    Relation relation = EvaluateBottomUp(g, f);
    for (Vertex v = 0; v < g.order(); ++v) {
      Vertex tuple[] = {v};
      Assignment assignment(vars, tuple);
      ASSERT_EQ(Evaluate(g, f, assignment), relation.Contains(assignment))
          << ToString(f) << " at v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSeeds, EvalEquivalenceProperty,
    ::testing::Values(EvalEquivalenceParam{GraphFamily::kPath, 11},
                      EvalEquivalenceParam{GraphFamily::kCycle, 12},
                      EvalEquivalenceParam{GraphFamily::kRandomTree, 13},
                      EvalEquivalenceParam{GraphFamily::kStar, 14},
                      EvalEquivalenceParam{GraphFamily::kErdosRenyiSparse,
                                           15},
                      EvalEquivalenceParam{GraphFamily::kGrid, 16}),
    [](const ::testing::TestParamInfo<EvalEquivalenceParam>& info) {
      return std::string(FamilyName(info.param.family)) + "_" +
             std::to_string(info.param.seed);
    });

// --- Transform invariants --------------------------------------------------------

class TransformProperty : public ::testing::TestWithParam<int> {};

TEST_P(TransformProperty, RenamingPreservesSemanticsUnderRenamedBinding) {
  Rng rng(GetParam());
  Graph g = MakeFamilyGraph(GraphFamily::kRandomTree, 8, rng);
  AddRandomColors(g, {"Red"}, 0.5, rng);
  for (int i = 0; i < 20; ++i) {
    FormulaRef f = RandomFormula(rng, {"x1", "x2"}, {"Red"}, 2, 3);
    FormulaRef renamed =
        RenameFreeVariables(f, {{"x1", "u"}, {"x2", "x1"}});
    // Semantics: f(a, b) ⟺ renamed with u ↦ a, x1 ↦ b.
    for (int probe = 0; probe < 6; ++probe) {
      Vertex a = static_cast<Vertex>(rng.UniformIndex(g.order()));
      Vertex b = static_cast<Vertex>(rng.UniformIndex(g.order()));
      std::string original_vars[] = {"x1", "x2"};
      Vertex original_tuple[] = {a, b};
      std::string renamed_vars[] = {"u", "x1"};
      Vertex renamed_tuple[] = {a, b};
      ASSERT_EQ(
          EvaluateQuery(g, f, original_vars, original_tuple),
          EvaluateQuery(g, renamed, renamed_vars, renamed_tuple))
          << ToString(f) << " ↦ " << ToString(renamed) << " a=" << a
          << " b=" << b;
    }
  }
}

TEST_P(TransformProperty, RelativizationEqualsInducedBallEvaluation) {
  Rng rng(1000 + GetParam());
  Graph g = MakeFamilyGraph(GraphFamily::kBoundedDegree, 20, rng);
  AddRandomColors(g, {"Red"}, 0.4, rng);
  const int radius = 2;
  std::string vars[] = {"x1"};
  for (int i = 0; i < 10; ++i) {
    FormulaRef f = RandomFormula(rng, {"x1"}, {"Red"}, 2, 3);
    FormulaRef local = RelativizeToBall(f, {"x1"}, radius);
    EXPECT_LE(local->quantifier_rank(),
              f->quantifier_rank() + 2);  // + O(log radius)
    for (Vertex v = 0; v < g.order(); v += 3) {
      Vertex tuple[] = {v};
      NeighborhoodGraph nbhd = BuildNeighborhoodGraph(g, tuple, radius);
      Vertex mapped[] = {nbhd.tuple[0]};
      ASSERT_EQ(EvaluateQuery(nbhd.induced.graph, f, vars, mapped),
                EvaluateQuery(g, local, vars, tuple))
          << ToString(f) << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformProperty,
                         ::testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace folearn
